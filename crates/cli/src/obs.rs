//! The `wakeup obs` subcommand: inspect, diff, and export schema-4
//! observability snapshots.
//!
//! Snapshot files come in three shapes, all accepted by every subcommand:
//!
//! * a bare [`wakeup_sim::ObsSnapshot`] JSON object (`{"schema":4,...}`),
//!   as written by `ObsSnapshot::to_json()` / `to_json_diag()`;
//! * the `table1 --obs-json` array (`[{"row":...,"n":...,"snapshot":{...}}]`);
//! * the `engine_perf --obs-json` array
//!   (`[{"workload":...,"n":...,"snapshot":{...}}]`).
//!
//! `inspect` pretty-prints each snapshot (counters, histograms, critical
//! path, an ASCII timeline sparkline). `diff` compares two files
//! field-by-field: every flattened path must match byte-for-byte except
//! tolerance-class paths (`runtime.*` always, plus `--tolerance` prefixes),
//! and any exact mismatch makes the exit code nonzero. `timeline` dumps the
//! windowed series as CSV or JSONL.

use std::collections::BTreeMap;

use wakeup_scenario::json::{self, Value};

use crate::{err, CliError};

/// Entry point for `wakeup obs <inspect|diff|timeline> ...`.
///
/// # Errors
///
/// Returns a [`CliError`] on usage errors, unreadable/unparseable files, and
/// — for `diff` — on any exact-field mismatch (the CI contract: a nonzero
/// exit is a determinism violation).
pub fn cmd_obs(args: &[String]) -> Result<(), CliError> {
    let (sub, rest) = args
        .split_first()
        .ok_or_else(|| err("obs needs a subcommand: inspect | diff | timeline"))?;
    let (paths, flags) = split_args(rest)?;
    match sub.as_str() {
        "inspect" => {
            let [path] = paths.as_slice() else {
                return Err(err("usage: wakeup obs inspect <FILE>"));
            };
            print!("{}", render_inspect(&load_snapshots(path)?));
            Ok(())
        }
        "diff" => {
            let [a, b] = paths.as_slice() else {
                return Err(err(
                    "usage: wakeup obs diff <A> <B> [--tolerance PATH,PATH]",
                ));
            };
            let tolerance: Vec<String> = flags
                .get("tolerance")
                .map(|t| t.split(',').map(str::to_string).collect())
                .unwrap_or_default();
            let report = diff_values(&load_doc(a)?, &load_doc(b)?, &tolerance);
            print!("{}", report.text);
            if report.exact_mismatches > 0 {
                return Err(err(format!(
                    "{} exact mismatch(es) between {a} and {b}",
                    report.exact_mismatches
                )));
            }
            Ok(())
        }
        "timeline" => {
            let [path] = paths.as_slice() else {
                return Err(err(
                    "usage: wakeup obs timeline <FILE> [--format csv|jsonl]",
                ));
            };
            let format = flags.get("format").map_or("csv", String::as_str);
            if format != "csv" && format != "jsonl" {
                return Err(err(format!(
                    "unknown timeline format {format:?} (try csv or jsonl)"
                )));
            }
            print!("{}", render_timeline(&load_snapshots(path)?, format));
            Ok(())
        }
        other => Err(err(format!(
            "unknown obs subcommand {other:?} (try inspect, diff, timeline)"
        ))),
    }
}

/// Splits raw args into positional paths and `--key value` flags.
fn split_args(args: &[String]) -> Result<(Vec<String>, BTreeMap<String, String>), CliError> {
    let mut paths = Vec::new();
    let mut flags = BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let value = args
                .get(i + 1)
                .ok_or_else(|| err(format!("flag --{key} needs a value")))?;
            flags.insert(key.to_string(), value.clone());
            i += 2;
        } else {
            paths.push(args[i].clone());
            i += 1;
        }
    }
    Ok((paths, flags))
}

/// One labeled snapshot extracted from a file.
struct Labeled {
    label: String,
    snapshot: Value,
}

fn load_doc(path: &str) -> Result<Value, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path:?}: {e}")))?;
    json::parse(&text).map_err(|e| err(format!("{path}: {e}")))
}

/// Extracts `(label, snapshot)` pairs from any accepted file shape.
fn load_snapshots(path: &str) -> Result<Vec<Labeled>, CliError> {
    let doc = load_doc(path)?;
    match &doc {
        Value::Obj(_) if doc.get("schema").is_some() => Ok(vec![Labeled {
            label: "snapshot".to_string(),
            snapshot: doc,
        }]),
        Value::Arr(entries) => {
            let mut out = Vec::with_capacity(entries.len());
            for (i, entry) in entries.iter().enumerate() {
                let snapshot = entry
                    .get("snapshot")
                    .ok_or_else(|| err(format!("{path}: entry {i} has no \"snapshot\" field")))?;
                let name = ["row", "workload", "protocol"]
                    .iter()
                    .find_map(|k| match entry.get(k) {
                        Some(Value::Str(s)) => Some(s.clone()),
                        _ => None,
                    })
                    .unwrap_or_else(|| format!("entry {i}"));
                let label = match entry.get("n") {
                    Some(Value::Num(n)) => format!("{name} n={n}"),
                    _ => name,
                };
                out.push(Labeled {
                    label,
                    snapshot: snapshot.clone(),
                });
            }
            Ok(out)
        }
        _ => Err(err(format!(
            "{path}: expected a snapshot object or an array of {{.., \"snapshot\": ..}} entries"
        ))),
    }
}

fn unum(v: Option<&Value>) -> u64 {
    match v {
        Some(Value::Num(x)) => *x as u64,
        _ => 0,
    }
}

fn fnum(v: Option<&Value>) -> f64 {
    match v {
        Some(Value::Num(x)) => *x,
        _ => 0.0,
    }
}

/// Renders one scalar the way the canonical writer would, without the
/// trailing newline — the byte form `diff` compares.
fn scalar_text(v: &Value) -> String {
    let mut s = json::canonical(v);
    s.truncate(s.trim_end().len());
    s
}

// ---------------------------------------------------------------- inspect

const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Log-scaled sparkline over one value per timeline window.
fn sparkline(values: &[u64]) -> String {
    let max = values.iter().copied().max().unwrap_or(0);
    values
        .iter()
        .map(|&v| {
            if v == 0 {
                SPARK[0]
            } else {
                // Log scale so the flood peak doesn't flatten the tail.
                let hi = (max as f64).ln().max(1e-9);
                let idx = ((v as f64).ln() / hi * 7.0).round() as usize;
                SPARK[idx.min(7)]
            }
        })
        .collect()
}

fn render_hist(out: &mut String, name: &str, h: &Value) {
    let count = unum(h.get("count"));
    let sum = unum(h.get("sum"));
    let max = unum(h.get("max"));
    let mean = if count == 0 {
        0.0
    } else {
        sum as f64 / count as f64
    };
    out.push_str(&format!(
        "  {name:<13} count {count:>8}  mean {mean:>10.2}  max {max}\n"
    ));
    let Some(Value::Arr(buckets)) = h.get("buckets") else {
        return;
    };
    let peak = buckets
        .iter()
        .map(|b| match b {
            Value::Arr(p) if p.len() == 2 => unum(Some(&p[1])),
            _ => 0,
        })
        .max()
        .unwrap_or(0)
        .max(1);
    for b in buckets {
        let Value::Arr(pair) = b else { continue };
        let (i, c) = (unum(pair.first()), unum(pair.get(1)));
        let bar = "#".repeat(((c as f64 / peak as f64) * 32.0).ceil() as usize);
        out.push_str(&format!(
            "    ≤{:<12} {c:>8} {bar}\n",
            wakeup_sim::Hist64::bucket_hi(i as usize)
        ));
    }
}

fn render_inspect(snapshots: &[Labeled]) -> String {
    let mut out = String::new();
    for l in snapshots {
        let s = &l.snapshot;
        out.push_str(&format!(
            "=== {} (schema {})\n",
            l.label,
            unum(s.get("schema"))
        ));
        out.push_str(&format!(
            "  n {} | messages {} | bits {} | events {} | time {:.3} τ | all awake: {}\n",
            unum(s.get("n")),
            unum(s.get("messages")),
            unum(s.get("bits")),
            unum(s.get("events")),
            fnum(s.get("time_units")),
            matches!(s.get("all_awake"), Some(Value::Bool(true))),
        ));
        out.push_str(&format!(
            "  critical path: {} hops over {:.3} τ\n",
            unum(s.get("crit_hops")),
            fnum(s.get("crit_tau"))
        ));
        for name in ["delay_ticks", "batch_sizes", "wake_latency", "message_bits"] {
            if let Some(h) = s.get(name) {
                render_hist(&mut out, name, h);
            }
        }
        if let Some(tl) = s.get("timeline") {
            let rows = timeline_rows(tl);
            if rows.is_empty() {
                out.push_str("  timeline: (empty)\n");
            } else {
                let events: Vec<u64> = rows.iter().map(|r| r.events).collect();
                let frontier: Vec<u64> = rows.iter().map(|r| r.frontier).collect();
                let in_flight: Vec<u64> = rows.iter().map(|r| r.in_flight).collect();
                out.push_str(&format!(
                    "  timeline ({} mode, {} windows, last window {}):\n",
                    match tl.get("mode") {
                        Some(Value::Str(m)) => m.clone(),
                        _ => "?".to_string(),
                    },
                    rows.len(),
                    rows.last().map_or(0, |r| r.window),
                ));
                out.push_str(&format!("    events    {}\n", sparkline(&events)));
                out.push_str(&format!("    frontier  {}\n", sparkline(&frontier)));
                out.push_str(&format!("    in-flight {}\n", sparkline(&in_flight)));
            }
        }
        if let Some(i) = s.get("internals") {
            out.push_str(&format!(
                "  internals: peak frontier {} | peak in-flight {} | total wakes {}\n",
                unum(i.get("peak_frontier")),
                unum(i.get("peak_in_flight")),
                unum(i.get("total_wakes"))
            ));
        }
        if let Some(r) = s.get("runtime") {
            out.push_str(&format!(
                "  runtime (diag): shards {} | wheel max scan {} | arena high water {} | \
                 prefetch batches {} | stall rounds {} | relabeled {}\n",
                unum(r.get("shards")),
                unum(r.get("wheel_max_scan")),
                unum(r.get("arena_high_water")),
                unum(r.get("prefetch_batches")),
                unum(r.get("stall_rounds")),
                matches!(r.get("relabel_applied"), Some(Value::Bool(true))),
            ));
        }
    }
    out
}

// --------------------------------------------------------------- timeline

/// One parsed timeline row (the schema-4 column order).
struct TlRow {
    window: u64,
    start_tick: u64,
    events: u64,
    sends: u64,
    bits: u64,
    delivered: u64,
    wakes: u64,
    frontier: u64,
    in_flight: u64,
}

fn timeline_rows(tl: &Value) -> Vec<TlRow> {
    let Some(Value::Arr(windows)) = tl.get("windows") else {
        return Vec::new();
    };
    windows
        .iter()
        .filter_map(|w| match w {
            Value::Arr(c) if c.len() == 9 => Some(TlRow {
                window: unum(c.first()),
                start_tick: unum(c.get(1)),
                events: unum(c.get(2)),
                sends: unum(c.get(3)),
                bits: unum(c.get(4)),
                delivered: unum(c.get(5)),
                wakes: unum(c.get(6)),
                frontier: unum(c.get(7)),
                in_flight: unum(c.get(8)),
            }),
            _ => None,
        })
        .collect()
}

fn render_timeline(snapshots: &[Labeled], format: &str) -> String {
    let mut out = String::new();
    if format == "csv" {
        out.push_str(
            "label,window,start_tick,events,sends,bits,delivered,wakes,frontier,in_flight\n",
        );
    }
    for l in snapshots {
        let Some(tl) = l.snapshot.get("timeline") else {
            continue;
        };
        for r in timeline_rows(tl) {
            if format == "csv" {
                // Labels are free-form ("row" strings); quote per RFC 4180.
                out.push_str(&format!(
                    "\"{}\",{},{},{},{},{},{},{},{},{}\n",
                    l.label.replace('"', "\"\""),
                    r.window,
                    r.start_tick,
                    r.events,
                    r.sends,
                    r.bits,
                    r.delivered,
                    r.wakes,
                    r.frontier,
                    r.in_flight
                ));
            } else {
                out.push_str(&format!(
                    "{{\"label\":{},\"window\":{},\"start_tick\":{},\"events\":{},\"sends\":{},\
                     \"bits\":{},\"delivered\":{},\"wakes\":{},\"frontier\":{},\"in_flight\":{}}}\n",
                    scalar_text(&Value::Str(l.label.clone())),
                    r.window,
                    r.start_tick,
                    r.events,
                    r.sends,
                    r.bits,
                    r.delivered,
                    r.wakes,
                    r.frontier,
                    r.in_flight
                ));
            }
        }
    }
    out
}

// ------------------------------------------------------------------- diff

/// The outcome of a structural diff.
struct DiffReport {
    text: String,
    exact_mismatches: usize,
    /// Differences absorbed by `--tolerance` / the built-in `runtime.*`
    /// class; already folded into `text`, read directly only by tests.
    #[cfg_attr(not(test), allow(dead_code))]
    tolerated: usize,
}

/// Flattens a document into `path → canonical scalar` entries. Array
/// elements become `path[i]`, object members `path.key`.
fn flatten(v: &Value, path: &str, out: &mut BTreeMap<String, String>) {
    match v {
        Value::Obj(fields) => {
            for (k, x) in fields {
                let p = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                flatten(x, &p, out);
            }
        }
        Value::Arr(items) => {
            // Record the length so added/removed elements always surface
            // even when the surviving prefix matches.
            out.insert(format!("{path}.#len"), items.len().to_string());
            for (i, x) in items.iter().enumerate() {
                flatten(x, &format!("{path}[{i}]"), out);
            }
        }
        scalar => {
            out.insert(path.to_string(), scalar_text(scalar));
        }
    }
}

/// Whether `path` falls in the tolerance class: `runtime` blocks always do
/// (machine/config-dependent by design), plus any user-supplied prefix
/// matched against the flattened dotted path.
fn is_tolerated(path: &str, tolerance: &[String]) -> bool {
    let in_runtime =
        path.starts_with("runtime.") || path.contains(".runtime.") || path == "runtime";
    in_runtime || tolerance.iter().any(|t| !t.is_empty() && path.contains(t))
}

/// Field-by-field comparison of two parsed documents.
fn diff_values(a: &Value, b: &Value, tolerance: &[String]) -> DiffReport {
    let (mut fa, mut fb) = (BTreeMap::new(), BTreeMap::new());
    flatten(a, "", &mut fa);
    flatten(b, "", &mut fb);
    let mut text = String::new();
    let (mut exact, mut tolerated) = (0usize, 0usize);
    let mut keys: Vec<&String> = fa.keys().collect();
    keys.extend(fb.keys().filter(|k| !fa.contains_key(*k)));
    keys.sort();
    for key in keys {
        let (va, vb) = (fa.get(key), fb.get(key));
        if va == vb {
            continue;
        }
        let class = if is_tolerated(key, tolerance) {
            tolerated += 1;
            "tolerated"
        } else {
            exact += 1;
            "MISMATCH"
        };
        let show = |v: Option<&String>| v.map_or("<absent>".to_string(), Clone::clone);
        text.push_str(&format!("{class:<9} {key}: {} != {}\n", show(va), show(vb)));
    }
    text.push_str(&format!(
        "{exact} exact mismatch(es), {tolerated} tolerated difference(s)\n"
    ));
    DiffReport {
        text,
        exact_mismatches: exact,
        tolerated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Value {
        json::parse(s).unwrap()
    }

    #[test]
    fn diff_is_clean_on_identical_documents() {
        let v = parse(r#"{"schema":4,"n":2,"timeline":{"windows":[[0,0,1,1,8,0,0,0,1]]}}"#);
        let r = diff_values(&v, &v, &[]);
        assert_eq!(r.exact_mismatches, 0);
        assert_eq!(r.tolerated, 0);
    }

    #[test]
    fn diff_flags_exact_mismatches_but_tolerates_runtime() {
        let a = parse(r#"{"schema":4,"events":5,"runtime":{"shards":1,"wheel_max_scan":0}}"#);
        let b = parse(r#"{"schema":4,"events":6,"runtime":{"shards":4,"wheel_max_scan":9}}"#);
        let r = diff_values(&a, &b, &[]);
        assert_eq!(r.exact_mismatches, 1, "{}", r.text);
        assert_eq!(r.tolerated, 2, "{}", r.text);
        assert!(r.text.contains("MISMATCH  events: 5 != 6"));
    }

    #[test]
    fn diff_surfaces_added_and_missing_fields() {
        let a = parse(r#"{"schema":4,"phases":[{"label":"a"}]}"#);
        let b = parse(r#"{"schema":4,"phases":[{"label":"a"},{"label":"b"}],"extra":1}"#);
        let r = diff_values(&a, &b, &[]);
        assert!(r.exact_mismatches >= 3, "{}", r.text);
        assert!(r.text.contains("phases.#len: 1 != 2"));
        assert!(r.text.contains("extra: <absent> != 1"));
    }

    #[test]
    fn user_tolerance_prefixes_downgrade_mismatches() {
        let a = parse(r#"{"time_units":1.5,"events":5}"#);
        let b = parse(r#"{"time_units":2.5,"events":5}"#);
        let strict = diff_values(&a, &b, &[]);
        assert_eq!(strict.exact_mismatches, 1);
        let lax = diff_values(&a, &b, &["time_units".to_string()]);
        assert_eq!(lax.exact_mismatches, 0);
        assert_eq!(lax.tolerated, 1);
    }

    #[test]
    fn snapshot_array_entries_get_labels() {
        let doc = r#"[{"row":"flooding","n":64,"snapshot":{"schema":4}}]"#;
        std::fs::write("/tmp/wakeup_obs_cli_test.json", doc).unwrap();
        let snaps = load_snapshots("/tmp/wakeup_obs_cli_test.json").unwrap();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].label, "flooding n=64");
        assert_eq!(unum(snaps[0].snapshot.get("schema")), 4);
    }

    #[test]
    fn timeline_renders_csv_and_jsonl() {
        let snaps = vec![Labeled {
            label: "x".to_string(),
            snapshot: parse(
                r#"{"schema":4,"timeline":{"mode":"log2","width":0,
                    "windows":[[0,0,2,1,8,1,1,1,0],[3,7,4,0,0,4,0,1,0]]}}"#,
            ),
        }];
        let csv = render_timeline(&snaps, "csv");
        assert!(csv.starts_with("label,window,start_tick"));
        assert!(csv.contains("\"x\",0,0,2,1,8,1,1,1,0\n"));
        assert!(csv.contains("\"x\",3,7,4,0,0,4,0,1,0\n"));
        let jsonl = render_timeline(&snaps, "jsonl");
        assert!(jsonl.contains("{\"label\":\"x\",\"window\":3,\"start_tick\":7,\"events\":4,"));
    }

    #[test]
    fn inspect_renders_sparkline_and_internals() {
        let snaps = vec![Labeled {
            label: "flood".to_string(),
            snapshot: parse(
                r#"{"schema":4,"n":8,"messages":14,"bits":14,"events":22,
                    "time_units":7.0,"all_awake":true,"crit_hops":7,"crit_tau":7.0,
                    "delay_ticks":{"count":14,"sum":14336,"max":1024,"buckets":[[11,14]]},
                    "timeline":{"mode":"log2","width":0,
                      "windows":[[0,0,1,2,2,0,1,1,2],[10,1023,21,12,12,14,7,8,0]]},
                    "internals":{"windows":2,"last_window":10,"peak_frontier":8,
                      "peak_in_flight":2,"total_wakes":8}}"#,
            ),
        }];
        let text = render_inspect(&snaps);
        assert!(text.contains("=== flood (schema 4)"));
        assert!(text.contains("critical path: 7 hops over 7.000 τ"));
        assert!(text.contains("timeline (log2 mode, 2 windows, last window 10)"));
        assert!(text.contains("peak frontier 8"));
        // Two windows → two sparkline cells per series.
        for series in ["events", "frontier", "in-flight"] {
            let line = text
                .lines()
                .find(|l| l.trim_start().starts_with(series))
                .unwrap();
            assert_eq!(line.chars().filter(|c| SPARK.contains(c)).count(), 2);
        }
    }

    #[test]
    fn sparkline_is_log_scaled_and_total_on_empty() {
        assert_eq!(sparkline(&[]), "");
        let s = sparkline(&[1, 10, 100, 1000]);
        let cells: Vec<char> = s.chars().collect();
        assert_eq!(cells.len(), 4);
        assert_eq!(*cells.last().unwrap(), SPARK[7]);
        assert!(cells.windows(2).all(|w| w[0] <= w[1]));
    }
}
