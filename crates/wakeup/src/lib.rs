//! Umbrella crate for the adversarial wake-up reproduction.
//!
//! Re-exports the full public API of the workspace so downstream users can
//! depend on a single crate:
//!
//! * [`graph`] — topologies, generators, graph algorithms, the lower-bound
//!   families 𝒢 and 𝒢ₖ ([`wakeup_graph`]).
//! * [`sim`] — the asynchronous/synchronous simulation runtime, knowledge
//!   models, adversaries, and advice oracles ([`wakeup_sim`]).
//! * [`core`] — the paper's algorithms and advising schemes
//!   ([`wakeup_core`]).
//! * [`lb`] — the lower-bound experiments ([`wakeup_lb`]).
//! * [`store`] — the persistent artifact store: versioned, checksummed
//!   container files reloaded via zero-copy mmap ([`wakeup_store`]); the
//!   network/advice encodings live in [`sim::persist`].
//!
//! # Example
//!
//! ```
//! use wakeup::core::flooding::FloodAsync;
//! use wakeup::graph::{generators, NodeId};
//! use wakeup::sim::{adversary::WakeSchedule, Network};
//!
//! let net = Network::kt0(generators::cycle(8)?, 1);
//! let run = wakeup::core::harness::run_async::<FloodAsync>(
//!     &net,
//!     &WakeSchedule::single(NodeId::new(0)),
//!     1,
//! );
//! assert!(run.report.all_awake);
//! # Ok::<(), wakeup::graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use wakeup_core as core;
pub use wakeup_graph as graph;
pub use wakeup_lb as lb;
pub use wakeup_sim as sim;
pub use wakeup_store as store;
