//! The flooding baseline.
//!
//! "Note that ρ_awk is equivalent to the time complexity of the
//! (message-inefficient) standard flooding algorithm" (Section 1.2). Every
//! node broadcasts a one-bit wake-up signal on all ports the moment it wakes;
//! time is optimal (ρ_awk) and message complexity is Θ(m) — the yardstick
//! every message-efficient algorithm in the paper is measured against.

use wakeup_sim::{
    AsyncProtocol, Context, Inbox, Incoming, NodeInit, Payload, SyncProtocol, WakeCause,
};

/// The one-bit wake-up signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WakeSignal;

impl Payload for WakeSignal {
    fn size_bits(&self) -> usize {
        1
    }
}

/// Flooding in the asynchronous model (KT0 or KT1; uses ports only).
///
/// # Example
///
/// ```
/// use wakeup_core::flooding::FloodAsync;
/// use wakeup_graph::{generators, NodeId};
/// use wakeup_sim::{adversary::WakeSchedule, AsyncConfig, AsyncEngine, Network};
///
/// let net = Network::kt0(generators::grid(4, 4)?, 0);
/// let report = AsyncEngine::<FloodAsync>::new(&net, AsyncConfig::default())
///     .run(&WakeSchedule::single(NodeId::new(0)));
/// assert!(report.all_awake);
/// assert_eq!(report.metrics.messages_sent, 2 * net.graph().m() as u64);
/// # Ok::<(), wakeup_graph::GraphError>(())
/// ```
#[derive(Debug)]
pub struct FloodAsync {
    broadcasted: bool,
}

impl AsyncProtocol for FloodAsync {
    type Msg = WakeSignal;

    fn init(_: &NodeInit<'_>) -> Self {
        FloodAsync { broadcasted: false }
    }

    fn on_wake(&mut self, ctx: &mut Context<'_, WakeSignal>, _cause: WakeCause) {
        if !self.broadcasted {
            self.broadcasted = true;
            ctx.broadcast(WakeSignal);
        }
    }

    fn on_message(&mut self, _: &mut Context<'_, WakeSignal>, _: Incoming, _: WakeSignal) {}

    fn on_messages_batch(
        &mut self,
        _: &mut Context<'_, WakeSignal>,
        _: &mut Inbox<'_, WakeSignal>,
    ) {
        // Received signals carry no information beyond the wake-up the
        // engine already performed; dropping the whole batch at once skips
        // the default hook's per-message dispatch.
    }
}

/// Flooding in the synchronous model.
#[derive(Debug)]
pub struct FloodSync {
    broadcasted: bool,
}

impl SyncProtocol for FloodSync {
    type Msg = WakeSignal;

    fn init(_: &NodeInit<'_>) -> Self {
        FloodSync { broadcasted: false }
    }

    fn on_wake(&mut self, ctx: &mut Context<'_, WakeSignal>, _cause: WakeCause) {
        if !self.broadcasted {
            self.broadcasted = true;
            ctx.broadcast(WakeSignal);
        }
    }

    fn on_round(&mut self, _: &mut Context<'_, WakeSignal>, _: Vec<(Incoming, WakeSignal)>) {}

    fn on_messages_batch(
        &mut self,
        _: &mut Context<'_, WakeSignal>,
        _: &mut Inbox<'_, WakeSignal>,
    ) {
        // As `on_round`: nothing to do — the `Inbox` drops its messages in
        // one drain, with no intermediate `Vec` materialization.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wakeup_graph::{algo, generators, NodeId};
    use wakeup_sim::adversary::{RandomDelay, WakeSchedule};
    use wakeup_sim::{AsyncConfig, AsyncEngine, Network, SyncConfig, SyncEngine, TICKS_PER_UNIT};

    #[test]
    fn async_messages_exactly_2m() {
        for (g, seed) in [
            (generators::cycle(20).unwrap(), 1u64),
            (generators::complete(12).unwrap(), 2),
            (generators::erdos_renyi_connected(40, 0.15, 3).unwrap(), 3),
        ] {
            let m = g.m() as u64;
            let net = Network::kt0(g, seed);
            let report = AsyncEngine::<FloodAsync>::new(&net, AsyncConfig::default())
                .run(&WakeSchedule::single(NodeId::new(0)));
            assert!(report.all_awake);
            assert_eq!(report.metrics.messages_sent, 2 * m);
        }
    }

    #[test]
    fn sync_wakeup_time_equals_awake_distance() {
        let g = generators::grid(5, 6).unwrap();
        let awake = [NodeId::new(0), NodeId::new(29)];
        let rho = algo::awake_distance(&g, &awake).unwrap() as u64;
        let net = Network::kt1(g, 4);
        let report = SyncEngine::<FloodSync>::new(&net, SyncConfig::default())
            .run(&WakeSchedule::all_at_zero(&awake));
        assert!(report.all_awake);
        assert_eq!(
            report.metrics.all_awake_tick,
            Some(rho * TICKS_PER_UNIT),
            "flooding wakes everyone in exactly ρ_awk rounds"
        );
    }

    #[test]
    fn async_wakeup_within_awake_distance_under_any_delay() {
        let g = generators::erdos_renyi_connected(50, 0.08, 5).unwrap();
        let awake: Vec<NodeId> = vec![NodeId::new(3), NodeId::new(40)];
        let rho = algo::awake_distance(&g, &awake).unwrap() as f64;
        let net = Network::kt0(g, 5);
        for seed in 0..5 {
            let mut delays = RandomDelay::new(seed);
            let report = AsyncEngine::<FloodAsync>::new(&net, AsyncConfig::default())
                .run_with(&WakeSchedule::all_at_zero(&awake), &mut delays);
            assert!(report.metrics.wakeup_time_units().unwrap() <= rho + 1e-9);
        }
    }

    #[test]
    fn staggered_wakes_still_flood() {
        let g = generators::path(12).unwrap();
        let nodes: Vec<NodeId> = (0..12).step_by(4).map(NodeId::new).collect();
        let net = Network::kt0(g, 7);
        let report = AsyncEngine::<FloodAsync>::new(&net, AsyncConfig::default())
            .run(&WakeSchedule::staggered(&nodes, 3.0));
        assert!(report.all_awake);
    }
}
