//! A deterministic set gossip for synchronous KT1 networks — the simplified
//! stand-in for the Appendix-D algorithm on 𝒢ₖ (see DESIGN.md).
//!
//! Each awake node maintains the set of IDs it knows to be awake (itself,
//! every sender it has heard from, and everything those senders knew). Per
//! round it sends its knowledge to the single smallest-ID neighbor it does
//! not yet know to be awake. One message per node per round caps the message
//! complexity at `n · T` for a `T`-round execution — the defining property
//! of gossip protocols the paper cites (\[KSSV00\]) — and the knowledge sets
//! spread transitively, so close-by awake nodes quickly learn about each
//! other and stop contacting the same sleepers.

use std::collections::BTreeSet;

use wakeup_sim::{Context, Incoming, NodeInit, Payload, SyncProtocol, WakeCause};

/// A gossip message: the sender's ID plus its known-awake set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnownSet {
    /// The sender's ID.
    pub from: u64,
    /// IDs the sender knows to be awake.
    pub known: Vec<u64>,
}

impl Payload for KnownSet {
    fn size_bits(&self) -> usize {
        64 * (1 + self.known.len()) + 32
    }
}

/// The deterministic push-only set gossip.
#[derive(Debug)]
pub struct SetGossip {
    id: u64,
    neighbors: Vec<u64>,
    known_awake: BTreeSet<u64>,
    contacted: BTreeSet<u64>,
    awake: bool,
}

impl SetGossip {
    fn uncovered_neighbor(&self) -> Option<u64> {
        self.neighbors
            .iter()
            .copied()
            .find(|w| !self.known_awake.contains(w) && !self.contacted.contains(w))
    }
}

impl SyncProtocol for SetGossip {
    type Msg = KnownSet;

    fn init(init: &NodeInit<'_>) -> Self {
        SetGossip {
            id: init.id,
            neighbors: init
                .neighbor_ids
                .expect("SetGossip requires the KT1 knowledge mode")
                .to_vec(),
            known_awake: BTreeSet::new(),
            contacted: BTreeSet::new(),
            awake: false,
        }
    }

    fn on_wake(&mut self, _: &mut Context<'_, KnownSet>, _cause: WakeCause) {
        self.awake = true;
        self.known_awake.insert(self.id);
    }

    fn on_round(&mut self, ctx: &mut Context<'_, KnownSet>, inbox: Vec<(Incoming, KnownSet)>) {
        for (_, msg) in inbox {
            self.known_awake.insert(msg.from);
            self.known_awake.extend(msg.known);
        }
        if let Some(target) = self.uncovered_neighbor() {
            self.contacted.insert(target);
            let known: Vec<u64> = self.known_awake.iter().copied().collect();
            ctx.send_to_id(
                target,
                KnownSet {
                    from: self.id,
                    known,
                },
            );
        }
    }

    fn wants_round(&self) -> bool {
        self.awake && self.uncovered_neighbor().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wakeup_graph::families::ClassGk;
    use wakeup_graph::{generators, NodeId};
    use wakeup_sim::adversary::WakeSchedule;
    use wakeup_sim::{Network, SyncConfig, SyncEngine};

    fn run(net: &Network, schedule: &WakeSchedule) -> wakeup_sim::RunReport {
        SyncEngine::<SetGossip>::new(net, SyncConfig::default()).run(schedule)
    }

    #[test]
    fn single_source_wakes_everyone() {
        let g = generators::erdos_renyi_connected(40, 0.1, 1).unwrap();
        let net = Network::kt1(g, 1);
        let report = run(&net, &WakeSchedule::single(NodeId::new(0)));
        assert!(report.all_awake);
    }

    #[test]
    fn one_message_per_node_per_round() {
        let g = generators::complete(30).unwrap();
        let net = Network::kt1(g, 2);
        let all: Vec<NodeId> = (0..30).map(NodeId::new).collect();
        let report = run(&net, &WakeSchedule::all_at_zero(&all));
        assert!(report.all_awake);
        assert!(
            report.metrics.messages_sent <= 30 * report.rounds,
            "gossip invariant: messages {} <= n*T = {}",
            report.metrics.messages_sent,
            30 * report.rounds
        );
    }

    #[test]
    fn knowledge_spreading_saves_messages_on_class_gk() {
        // All centers awake on G_k: gossip lets centers learn about each
        // other through shared U-neighbors and stop re-contacting them;
        // messages stay below flooding's 2m.
        let fam = ClassGk::new(3, 3, 7).unwrap();
        let m = fam.graph().m() as u64;
        let net = Network::kt1(fam.graph().clone(), 7);
        let report = run(&net, &WakeSchedule::all_at_zero(&fam.centers()));
        assert!(report.all_awake);
        assert!(
            report.metrics.messages_sent < 2 * m,
            "messages {} should beat flooding {}",
            report.metrics.messages_sent,
            2 * m
        );
    }

    #[test]
    fn lollipop_footnote_case_completes() {
        // The paper's footnote-3 graph where push-only *uniform* gossip is
        // slow; the deterministic variant still completes (it has no
        // randomness to get unlucky with).
        let g = generators::lollipop(20, 1).unwrap();
        let net = Network::kt1(g, 3);
        let report = run(&net, &WakeSchedule::single(NodeId::new(0)));
        assert!(report.all_awake);
    }

    #[test]
    fn staggered_wakes_complete() {
        let g = generators::grid(5, 5).unwrap();
        let net = Network::kt1(g, 4);
        let schedule = WakeSchedule::from_pairs(&[(NodeId::new(0), 0.0), (NodeId::new(24), 6.0)]);
        let report = run(&net, &schedule);
        assert!(report.all_awake);
    }
}
