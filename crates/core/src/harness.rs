//! One-call experiment harness: run an algorithm on a network and collect
//! the paper's complexity measures alongside the graph parameters they are
//! compared against (ρ_awk, D).
//!
//! Every engine config built here takes its intra-run shard count from the
//! `WAKEUP_SHARDS` environment variable ([`wakeup_sim::shards_from_env`],
//! default 1). Sharded execution is byte-identical to serial, so flipping
//! the variable changes wall time only, never a reported number.

use wakeup_graph::algo;
use wakeup_sim::adversary::{DelayStrategy, WakeSchedule};
use wakeup_sim::{
    AsyncConfig, AsyncEngine, AsyncProtocol, Network, RunReport, SyncConfig, SyncEngine,
    SyncProtocol,
};

/// An execution report bundled with the workload's structural parameters.
#[derive(Debug, Clone)]
pub struct WakeupRun {
    /// The raw engine report.
    pub report: RunReport,
    /// Awake distance ρ_awk(G, A₀) of the schedule's initially-awake set
    /// (None if the schedule starts empty or the graph is disconnected).
    pub rho_awk: Option<usize>,
    /// Graph diameter (None if disconnected).
    pub diameter: Option<usize>,
}

fn decorate(net: &Network, schedule: &WakeSchedule, report: RunReport) -> WakeupRun {
    let initially_awake = schedule.initially_awake();
    let rho_awk = algo::awake_distance(net.graph(), &initially_awake);
    let diameter = algo::diameter(net.graph());
    WakeupRun {
        report,
        rho_awk,
        diameter,
    }
}

/// Runs an asynchronous protocol with unit (τ) delays.
pub fn run_async<P: AsyncProtocol>(net: &Network, schedule: &WakeSchedule, seed: u64) -> WakeupRun {
    let config = AsyncConfig {
        seed,
        shards: wakeup_sim::shards_from_env(),
        ..AsyncConfig::default()
    };
    let report = AsyncEngine::<P>::new(net, config).run(schedule);
    decorate(net, schedule, report)
}

/// Runs an asynchronous protocol with an explicit delay strategy.
pub fn run_async_with_delays<P: AsyncProtocol>(
    net: &Network,
    schedule: &WakeSchedule,
    seed: u64,
    delays: &mut dyn DelayStrategy,
) -> WakeupRun {
    let config = AsyncConfig {
        seed,
        shards: wakeup_sim::shards_from_env(),
        ..AsyncConfig::default()
    };
    let report = AsyncEngine::<P>::new(net, config).run_with(schedule, delays);
    decorate(net, schedule, report)
}

/// Runs a synchronous protocol.
pub fn run_sync<P: SyncProtocol>(net: &Network, schedule: &WakeSchedule, seed: u64) -> WakeupRun {
    let config = SyncConfig {
        seed,
        shards: wakeup_sim::shards_from_env(),
        ..SyncConfig::default()
    };
    let report = SyncEngine::<P>::new(net, config).run(schedule);
    decorate(net, schedule, report)
}

/// Aggregate of repeated trials of a randomized algorithm — the right way to
/// report "w.h.p." quantities (a single seed is an anecdote).
#[derive(Debug, Clone)]
pub struct TrialStats {
    /// Number of trials run.
    pub trials: usize,
    /// Trials in which every node woke up.
    pub successes: usize,
    /// Message counts per trial.
    pub messages: Vec<u64>,
    /// Time per trial (τ units).
    pub times: Vec<f64>,
}

impl TrialStats {
    /// Mean messages across trials.
    pub fn mean_messages(&self) -> f64 {
        self.messages.iter().sum::<u64>() as f64 / self.trials as f64
    }

    /// Worst (maximum) message count across trials — the quantity the
    /// paper's w.h.p. bounds speak about.
    pub fn max_messages(&self) -> u64 {
        self.messages.iter().copied().max().unwrap_or(0)
    }

    /// Worst time across trials.
    pub fn max_time(&self) -> f64 {
        self.times.iter().copied().fold(0.0, f64::max)
    }
}

/// Runs `trials` independent executions of an async protocol with seeds
/// `base_seed..base_seed + trials`.
pub fn run_trials_async<P: AsyncProtocol>(
    net: &Network,
    schedule: &WakeSchedule,
    base_seed: u64,
    trials: usize,
) -> TrialStats {
    let mut stats = TrialStats {
        trials,
        successes: 0,
        messages: Vec::with_capacity(trials),
        times: Vec::with_capacity(trials),
    };
    // One engine for all trials: reset re-seeds the per-node states in place,
    // so the tables, wheel, and channel arrays are built once, not per trial
    // (and unlike `run_async`, no per-trial ρ_awk/diameter BFS — TrialStats
    // never reports them).
    let config = AsyncConfig {
        seed: base_seed,
        shards: wakeup_sim::shards_from_env(),
        ..AsyncConfig::default()
    };
    let mut engine = AsyncEngine::<P>::new(net, config);
    for i in 0..trials {
        if i > 0 {
            engine.reset(base_seed + i as u64);
        }
        let report = engine.run_mut(schedule, &mut wakeup_sim::adversary::UnitDelay);
        stats.successes += usize::from(report.all_awake);
        stats.messages.push(report.messages());
        stats.times.push(report.time_units());
    }
    stats
}

/// Runs `trials` independent executions of a sync protocol.
pub fn run_trials_sync<P: SyncProtocol>(
    net: &Network,
    schedule: &WakeSchedule,
    base_seed: u64,
    trials: usize,
) -> TrialStats {
    let mut stats = TrialStats {
        trials,
        successes: 0,
        messages: Vec::with_capacity(trials),
        times: Vec::with_capacity(trials),
    };
    // Same engine-reuse pattern as `run_trials_async`.
    let config = SyncConfig {
        seed: base_seed,
        shards: wakeup_sim::shards_from_env(),
        ..SyncConfig::default()
    };
    let mut engine = SyncEngine::<P>::new(net, config);
    for i in 0..trials {
        if i > 0 {
            engine.reset(base_seed + i as u64);
        }
        let report = engine.run_mut(schedule);
        stats.successes += usize::from(report.all_awake);
        stats.messages.push(report.messages());
        stats.times.push(report.rounds as f64);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs_rank::DfsRank;
    use crate::flooding::{FloodAsync, FloodSync};
    use wakeup_graph::{generators, NodeId};
    use wakeup_sim::adversary::RandomDelay;

    #[test]
    fn decorates_with_rho_and_diameter() {
        let net = Network::kt0(generators::path(10).unwrap(), 1);
        let run = run_async::<FloodAsync>(&net, &WakeSchedule::single(NodeId::new(0)), 1);
        assert_eq!(run.rho_awk, Some(9));
        assert_eq!(run.diameter, Some(9));
        assert!(run.report.all_awake);
    }

    #[test]
    fn sync_runner_works() {
        let net = Network::kt1(generators::cycle(12).unwrap(), 2);
        let run = run_sync::<FloodSync>(&net, &WakeSchedule::single(NodeId::new(3)), 2);
        assert!(run.report.all_awake);
        assert_eq!(run.rho_awk, Some(6));
    }

    #[test]
    fn delay_strategy_runner_works() {
        let net = Network::kt1(generators::complete(8).unwrap(), 3);
        let mut delays = RandomDelay::new(9);
        let run = run_async_with_delays::<DfsRank>(
            &net,
            &WakeSchedule::single(NodeId::new(0)),
            3,
            &mut delays,
        );
        assert!(run.report.all_awake);
    }

    #[test]
    fn trials_aggregate_correctly() {
        let net = Network::kt1(generators::erdos_renyi_connected(25, 0.2, 5).unwrap(), 5);
        let stats = run_trials_async::<DfsRank>(&net, &WakeSchedule::single(NodeId::new(0)), 10, 8);
        assert_eq!(stats.trials, 8);
        assert_eq!(stats.successes, 8, "DfsRank is Las Vegas");
        assert_eq!(stats.messages.len(), 8);
        assert!(stats.mean_messages() > 0.0);
        assert!(stats.max_messages() >= stats.mean_messages() as u64);
        assert!(stats.max_time() > 0.0);
    }

    #[test]
    fn sync_trials_count_rounds() {
        let net = Network::kt1(generators::path(6).unwrap(), 2);
        let stats = run_trials_sync::<FloodSync>(&net, &WakeSchedule::single(NodeId::new(0)), 1, 3);
        assert_eq!(stats.successes, 3);
        assert!(stats.max_time() >= 5.0);
    }

    #[test]
    fn empty_schedule_has_no_rho() {
        let net = Network::kt0(generators::path(4).unwrap(), 4);
        let run = run_async::<FloodAsync>(&net, &WakeSchedule::default(), 1);
        assert_eq!(run.rho_awk, None);
        assert!(!run.report.all_awake);
    }
}
