//! A CONGEST-compliant variant of the Theorem 3 DFS — and a demonstration of
//! why the theorem is stated for the LOCAL model.
//!
//! [`crate::dfs_rank::DfsRank`] keeps its message count at O(n log n) by
//! carrying the full visited list inside the token, so a token is never
//! forwarded to an already-visited node. Under CONGEST the token can only
//! carry its `(rank, origin)` key; visited state must live at the nodes, and
//! the classic echo technique applies: a token forwarded to an
//! already-visited node *bounces* back, costing two messages on every
//! non-tree edge it probes. The result is correct and CONGEST-sized but
//! pays Θ(m) messages in the worst case — exactly the gap between this
//! variant and Theorem 3 that the `ablation_congest` measurements expose.

use wakeup_graph::rng::Xoshiro256;
use wakeup_sim::{AsyncProtocol, Context, Incoming, NodeInit, Payload, WakeCause};

/// CONGEST-sized DFS traffic: every message carries only the token key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CongestDfsMsg {
    /// The token advances to a (hopefully unvisited) node.
    Token {
        /// Originator's random rank.
        rank: u64,
        /// Originator's ID.
        origin: u64,
    },
    /// The receiver had already been visited by this token: try elsewhere.
    Bounce {
        /// Originator's random rank.
        rank: u64,
        /// Originator's ID.
        origin: u64,
    },
    /// The receiver finished its subtree: continue with your next neighbor.
    Return {
        /// Originator's random rank.
        rank: u64,
        /// Originator's ID.
        origin: u64,
    },
}

impl CongestDfsMsg {
    fn key(&self) -> (u64, u64) {
        match *self {
            CongestDfsMsg::Token { rank, origin }
            | CongestDfsMsg::Bounce { rank, origin }
            | CongestDfsMsg::Return { rank, origin } => (rank, origin),
        }
    }
}

impl Payload for CongestDfsMsg {
    fn size_bits(&self) -> usize {
        // Tag + the significant bits of the rank (≈ 3·log₂ n, since ranks
        // come from [n³]) and the origin ID (≈ log₂ n) — ~4·log₂ n total,
        // within the standard CONGEST budget.
        let (rank, origin) = self.key();
        let bits = |x: u64| 64 - x.max(1).leading_zeros() as usize;
        2 + bits(rank) + bits(origin)
    }
}

#[derive(Debug, Default)]
struct TokenState {
    parent: Option<u64>,
    /// Cursor into the sorted neighbor list: neighbors below it have been
    /// probed (or are the parent, which is skipped, never probed). Equivalent
    /// to the classic per-token `tried` set because probes go out in
    /// ascending-ID order, so the tried set is always a prefix.
    next: usize,
    visited: bool,
}

/// The CONGEST DFS protocol (KT1, asynchronous).
#[derive(Debug)]
pub struct DfsCongest {
    id: u64,
    neighbors: Vec<u64>,
    rng: Xoshiro256,
    rank_bound: u64,
    best: Option<(u64, u64)>,
    /// Per-token-key traversal state, sorted by key. Keys strictly below
    /// `best` are pruned whenever `best` rises (messages carrying them are
    /// discarded before ever touching this list), so the list stays at a
    /// handful of entries instead of one per token ever seen.
    states: Vec<((u64, u64), TokenState)>,
}

impl DfsCongest {
    /// The index of `key`'s state, inserting a fresh one if absent.
    fn state_index(&mut self, key: (u64, u64)) -> usize {
        match self.states.binary_search_by_key(&key, |e| e.0) {
            Ok(i) => i,
            Err(i) => {
                self.states.insert(i, (key, TokenState::default()));
                i
            }
        }
    }

    /// Drops state for keys strictly below `best` — no message carrying them
    /// survives the discard filter, so they are unreachable.
    fn prune_below_best(&mut self) {
        if let Some(best) = self.best {
            let cut = self.states.partition_point(|e| e.0 < best);
            if cut > 0 {
                self.states.drain(..cut);
            }
        }
    }

    /// Forwards the token for `key` to this node's next untried neighbor, or
    /// returns it to the parent when exhausted.
    fn advance(&mut self, ctx: &mut Context<'_, CongestDfsMsg>, key: (u64, u64)) {
        let i = self.state_index(key);
        let state = &mut self.states[i].1;
        let (rank, origin) = key;
        loop {
            match self.neighbors.get(state.next) {
                Some(&w) => {
                    state.next += 1;
                    if Some(w) == state.parent {
                        continue; // the parent is never probed
                    }
                    ctx.send_to_id(w, CongestDfsMsg::Token { rank, origin });
                    return;
                }
                None => {
                    if let Some(parent) = state.parent {
                        ctx.send_to_id(parent, CongestDfsMsg::Return { rank, origin });
                    }
                    // At the origin with everything tried: traversal complete.
                    return;
                }
            }
        }
    }
}

impl AsyncProtocol for DfsCongest {
    type Msg = CongestDfsMsg;

    fn init(init: &NodeInit<'_>) -> Self {
        let n = init.n_hint.max(2) as u64;
        DfsCongest {
            id: init.id,
            neighbors: init
                .neighbor_ids
                .expect("DfsCongest requires the KT1 knowledge mode")
                .to_vec(),
            rng: Xoshiro256::seed_from(init.private_seed),
            rank_bound: n.saturating_mul(n).saturating_mul(n),
            best: None,
            states: Vec::new(),
        }
    }

    fn reinit(&mut self, init: &NodeInit<'_>) {
        debug_assert_eq!(self.id, init.id, "reinit must target the same node");
        self.rng = Xoshiro256::seed_from(init.private_seed);
        self.best = None;
        self.states.clear();
    }

    fn on_wake(&mut self, ctx: &mut Context<'_, CongestDfsMsg>, cause: WakeCause) {
        if cause != WakeCause::Adversary {
            return;
        }
        let rank = 1 + self.rng.next_below(self.rank_bound);
        let key = (rank, self.id);
        self.best = Some(key);
        self.prune_below_best();
        let i = self.state_index(key);
        self.states[i].1.visited = true;
        self.advance(ctx, key);
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, CongestDfsMsg>,
        from: Incoming,
        msg: CongestDfsMsg,
    ) {
        let key = msg.key();
        if let Some(best) = self.best {
            if key < best {
                return; // discard, as in Theorem 3
            }
        }
        self.best = Some(key);
        self.prune_below_best();
        let sender = from.sender_id.expect("KT1 reveals senders");
        match msg {
            CongestDfsMsg::Token { rank, origin } => {
                let i = self.state_index(key);
                let state = &mut self.states[i].1;
                if state.visited {
                    ctx.send(from.port, CongestDfsMsg::Bounce { rank, origin });
                } else {
                    state.visited = true;
                    state.parent = Some(sender);
                    self.advance(ctx, key);
                }
            }
            CongestDfsMsg::Bounce { .. } | CongestDfsMsg::Return { .. } => {
                // Our probe to `sender` is over; continue with the next
                // neighbor.
                self.advance(ctx, key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs_rank::DfsRank;
    use wakeup_graph::{generators, NodeId};
    use wakeup_sim::adversary::WakeSchedule;
    use wakeup_sim::{AsyncConfig, AsyncEngine, ChannelModel, Network};

    fn run(net: &Network, schedule: &WakeSchedule, seed: u64) -> wakeup_sim::RunReport {
        let config = AsyncConfig {
            seed,
            channel: ChannelModel::congest_for(net.n()),
            ..AsyncConfig::default()
        };
        AsyncEngine::<DfsCongest>::new(net, config).run(schedule)
    }

    #[test]
    fn wakes_everyone_within_congest() {
        for seed in 0..4 {
            let g = generators::erdos_renyi_connected(40, 0.15, seed).unwrap();
            let net = Network::kt1(g, seed);
            let report = run(&net, &WakeSchedule::single(NodeId::new(0)), seed);
            assert!(report.all_awake, "seed {seed}");
            assert_eq!(report.metrics.congest_violations, 0);
        }
    }

    #[test]
    fn message_bound_is_4m() {
        let g = generators::erdos_renyi_connected(50, 0.2, 3).unwrap();
        let m = g.m() as u64;
        let net = Network::kt1(g, 3);
        let report = run(&net, &WakeSchedule::single(NodeId::new(0)), 5);
        assert!(report.all_awake);
        // Each edge carries at most one probe + one bounce/return in each
        // direction.
        assert!(
            report.metrics.messages_sent <= 4 * m,
            "{} > 4m",
            report.metrics.messages_sent
        );
    }

    #[test]
    fn pays_theta_m_where_local_dfs_pays_theta_n() {
        // On a dense graph the CONGEST variant's bounces dominate, while the
        // LOCAL token sidesteps every visited node.
        let n = 60usize;
        let g = generators::complete(n).unwrap();
        let m = g.m() as u64;
        let net = Network::kt1(g, 4);
        let schedule = WakeSchedule::single(NodeId::new(0));
        let congest = run(&net, &schedule, 6);
        let local = AsyncEngine::<DfsRank>::new(
            &net,
            AsyncConfig {
                seed: 6,
                ..AsyncConfig::default()
            },
        )
        .run(&schedule);
        assert!(congest.all_awake && local.all_awake);
        assert!(
            congest.metrics.messages_sent > m,
            "CONGEST DFS should pay Ω(m): {} <= {m}",
            congest.metrics.messages_sent
        );
        assert!(
            local.metrics.messages_sent <= 2 * n as u64,
            "LOCAL DFS stays at O(n): {}",
            local.metrics.messages_sent
        );
    }

    #[test]
    fn multi_source_las_vegas() {
        let g = generators::grid(6, 6).unwrap();
        let net = Network::kt1(g, 7);
        let awake: Vec<NodeId> = (0..36).step_by(9).map(NodeId::new).collect();
        for seed in 0..4 {
            let report = run(&net, &WakeSchedule::staggered(&awake, 3.0), seed);
            assert!(report.all_awake, "seed {seed}");
        }
    }

    #[test]
    fn all_messages_are_congest_sized() {
        let g = generators::erdos_renyi_connected(30, 0.2, 8).unwrap();
        let net = Network::kt1(g, 8);
        let report = run(&net, &WakeSchedule::single(NodeId::new(0)), 9);
        assert!(report.metrics.max_message_bits <= 130);
    }
}
