//! Per-node energy accounting — the paper's motivation made measurable.
//!
//! The introduction motivates wake-up with Wake-on-LAN and data-center
//! energy budgets; what a NIC pays for is *handling messages* (sends and
//! receipts). This module turns a run's metrics into an energy profile:
//! total load, the worst node's load, and a Gini coefficient of the load
//! distribution. Two algorithms with the same message complexity can load
//! the network very differently (DFS concentrates traffic on the token's
//! path; flooding spreads it by degree), and the `energy_audit` example
//! compares them.

use wakeup_sim::Metrics;

/// Energy profile of an execution (1 unit = one message handled).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyReport {
    /// Per-node load: messages sent + received.
    pub load: Vec<u64>,
    /// Sum of loads (= 2 × messages sent).
    pub total: u64,
    /// The most-loaded node's load.
    pub max: u64,
    /// Mean load.
    pub mean: f64,
    /// Gini coefficient of the load distribution (0 = perfectly even,
    /// → 1 = one node does everything).
    pub gini: f64,
}

impl EnergyReport {
    /// Computes the profile from a run's metrics.
    ///
    /// # Panics
    ///
    /// Panics for zero-node metrics.
    pub fn from_metrics(metrics: &Metrics) -> EnergyReport {
        let n = metrics.sent_by.len();
        assert!(n > 0, "energy profile needs at least one node");
        let load: Vec<u64> = metrics
            .sent_by
            .iter()
            .zip(&metrics.received_by)
            .map(|(&s, &r)| s + r)
            .collect();
        let total: u64 = load.iter().sum();
        let max = load.iter().copied().max().unwrap_or(0);
        let mean = total as f64 / n as f64;
        EnergyReport {
            gini: gini(&load),
            load,
            total,
            max,
            mean,
        }
    }

    /// Ratio of the worst node's load to the mean (1.0 = perfectly even).
    pub fn imbalance(&self) -> f64 {
        if self.mean > 0.0 {
            self.max as f64 / self.mean
        } else {
            1.0
        }
    }
}

/// Gini coefficient of a nonnegative sample (0 for empty/all-zero samples).
pub fn gini(values: &[u64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let total: u64 = values.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    // G = (2 * sum_i i*x_(i) ) / (n * sum x) - (n + 1) / n, i from 1.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs_rank::DfsRank;
    use crate::flooding::FloodAsync;
    use crate::harness;
    use wakeup_graph::{generators, NodeId};
    use wakeup_sim::adversary::WakeSchedule;
    use wakeup_sim::Network;

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0, 0]), 0.0);
        assert!(gini(&[5, 5, 5, 5]).abs() < 1e-12, "even loads have Gini 0");
        // One node does everything among many: Gini → 1 - 1/n.
        let g = gini(&[0, 0, 0, 0, 0, 0, 0, 0, 0, 100]);
        assert!(g > 0.85, "{g}");
    }

    #[test]
    fn profile_conserves_totals() {
        let g = generators::erdos_renyi_connected(40, 0.15, 1).unwrap();
        let net = Network::kt0(g, 1);
        let run = harness::run_async::<FloodAsync>(&net, &WakeSchedule::single(NodeId::new(0)), 1);
        let profile = EnergyReport::from_metrics(&run.report.metrics);
        assert_eq!(profile.total, 2 * run.report.messages());
        assert!(profile.max >= profile.mean as u64);
        assert!((0.0..=1.0).contains(&profile.gini));
    }

    #[test]
    fn flooding_load_tracks_degree() {
        // Under flooding each node sends deg and receives deg: load = 2·deg.
        let g = generators::star(20).unwrap();
        let net = Network::kt0(g, 2);
        let run = harness::run_async::<FloodAsync>(&net, &WakeSchedule::single(NodeId::new(0)), 2);
        let profile = EnergyReport::from_metrics(&run.report.metrics);
        assert_eq!(profile.load[0], 2 * 19, "hub handles 2·deg");
        assert_eq!(profile.load[5], 2, "leaves handle 2");
    }

    #[test]
    fn dfs_spends_less_total_but_not_necessarily_balanced() {
        let g = generators::complete(30).unwrap();
        let net0 = Network::kt0(g.clone(), 3);
        let net1 = Network::kt1(g, 3);
        let schedule = WakeSchedule::single(NodeId::new(0));
        let flood = harness::run_async::<FloodAsync>(&net0, &schedule, 3);
        let dfs = harness::run_async::<DfsRank>(&net1, &schedule, 3);
        let ef = EnergyReport::from_metrics(&flood.report.metrics);
        let ed = EnergyReport::from_metrics(&dfs.report.metrics);
        assert!(
            ed.total < ef.total,
            "DFS total energy below flooding on K_n"
        );
    }
}
