//! Leader election under adversarial wake-up — the extension the paper's
//! related-work section motivates (Section 1.3 discusses leader election
//! with adversarially awoken nodes under KT0; here we build it on top of the
//! Theorem 3 machinery under KT1).
//!
//! The construction: run [`crate::dfs_rank::DfsRank`]'s token protocol; a
//! token that returns to its origin with an empty path was never discarded,
//! hence visited *every* node — its origin announces itself as a leader
//! candidate by flooding an announcement. Multiple candidates are possible
//! (a low-rank token can finish before ever meeting a higher trail), so
//! nodes adopt the lexicographically largest announced `(rank, id)`;
//! announcements for smaller candidates are not forwarded past a node that
//! knows a larger one, so every node converges to the same leader and the
//! announcement overhead stays O(n) per surviving candidate.
//!
//! Every node records the final leader's ID as its output, which makes
//! agreement checkable from the run report.

use wakeup_graph::rng::Xoshiro256;
use wakeup_sim::{AsyncProtocol, Context, Incoming, NodeInit, Payload, WakeCause};

/// Messages of the leader-election protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElectMsg {
    /// A DFS token (same semantics as [`crate::dfs_rank::DfsToken`]).
    Token {
        /// The originator's random rank.
        rank: u64,
        /// The originator's ID.
        origin: u64,
        /// IDs visited so far.
        visited: Vec<u64>,
        /// Current DFS stack.
        path: Vec<u64>,
    },
    /// A completed traversal's victory announcement.
    Announce {
        /// The candidate's rank.
        rank: u64,
        /// The candidate's ID.
        leader: u64,
    },
}

impl Payload for ElectMsg {
    fn size_bits(&self) -> usize {
        match self {
            ElectMsg::Token { visited, path, .. } => 64 * (2 + visited.len() + path.len()) + 64,
            ElectMsg::Announce { .. } => 128 + 2,
        }
    }
}

/// Leader election via random-rank DFS plus announcement flooding.
#[derive(Debug)]
pub struct LeaderElect {
    id: u64,
    neighbors: Vec<u64>,
    rng: Xoshiro256,
    rank_bound: u64,
    best_token: Option<(u64, u64)>,
    /// The best announced leader this node has adopted.
    adopted: Option<(u64, u64)>,
}

impl LeaderElect {
    fn advance(
        &mut self,
        ctx: &mut Context<'_, ElectMsg>,
        rank: u64,
        origin: u64,
        mut visited: Vec<u64>,
        mut path: Vec<u64>,
    ) {
        debug_assert_eq!(path.last(), Some(&self.id));
        let next = self
            .neighbors
            .iter()
            .copied()
            .find(|w| !visited.contains(w));
        match next {
            Some(w) => {
                ctx.send_to_id(
                    w,
                    ElectMsg::Token {
                        rank,
                        origin,
                        visited,
                        path,
                    },
                );
            }
            None => {
                path.pop();
                if let Some(&parent) = path.last() {
                    ctx.send_to_id(
                        parent,
                        ElectMsg::Token {
                            rank,
                            origin,
                            visited,
                            path,
                        },
                    );
                } else if origin == self.id {
                    // The token came home without ever being discarded: it
                    // visited everyone. Announce.
                    visited.clear();
                    self.adopt(ctx, rank, self.id);
                }
            }
        }
    }

    /// Adopts a candidate if it beats the current one and floods it onward.
    fn adopt(&mut self, ctx: &mut Context<'_, ElectMsg>, rank: u64, leader: u64) {
        let candidate = (rank, leader);
        if self.adopted.is_none_or(|cur| candidate > cur) {
            self.adopted = Some(candidate);
            ctx.output(leader);
            for &w in &self.neighbors.clone() {
                ctx.send_to_id(w, ElectMsg::Announce { rank, leader });
            }
        }
    }
}

impl AsyncProtocol for LeaderElect {
    type Msg = ElectMsg;

    fn init(init: &NodeInit<'_>) -> Self {
        let n = init.n_hint.max(2) as u64;
        LeaderElect {
            id: init.id,
            neighbors: init
                .neighbor_ids
                .expect("LeaderElect requires the KT1 knowledge mode")
                .to_vec(),
            rng: Xoshiro256::seed_from(init.private_seed),
            rank_bound: n.saturating_mul(n).saturating_mul(n),
            best_token: None,
            adopted: None,
        }
    }

    fn on_wake(&mut self, ctx: &mut Context<'_, ElectMsg>, cause: WakeCause) {
        if cause != WakeCause::Adversary {
            return;
        }
        let rank = 1 + self.rng.next_below(self.rank_bound);
        self.best_token = Some((rank, self.id));
        if self.neighbors.is_empty() {
            // Isolated node: its own token trivially "completes".
            self.adopt(ctx, rank, self.id);
            return;
        }
        self.advance(ctx, rank, self.id, vec![self.id], vec![self.id]);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, ElectMsg>, _from: Incoming, msg: ElectMsg) {
        match msg {
            ElectMsg::Token {
                rank,
                origin,
                mut visited,
                mut path,
            } => {
                let key = (rank, origin);
                if let Some(best) = self.best_token {
                    if key < best {
                        return;
                    }
                }
                self.best_token = Some(key);
                if !visited.contains(&self.id) {
                    visited.push(self.id);
                    path.push(self.id);
                }
                self.advance(ctx, rank, origin, visited, path);
            }
            ElectMsg::Announce { rank, leader } => {
                self.adopt(ctx, rank, leader);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wakeup_graph::{generators, NodeId};
    use wakeup_sim::adversary::{RandomDelay, WakeSchedule};
    use wakeup_sim::{AsyncConfig, AsyncEngine, Network};

    fn run(net: &Network, schedule: &WakeSchedule, seed: u64) -> wakeup_sim::RunReport {
        let config = AsyncConfig {
            seed,
            ..AsyncConfig::default()
        };
        AsyncEngine::<LeaderElect>::new(net, config).run(schedule)
    }

    fn agreed_leader(report: &wakeup_sim::RunReport) -> u64 {
        let first = report.outputs[0].expect("node 0 elected someone");
        for (v, out) in report.outputs.iter().enumerate() {
            assert_eq!(
                out.expect("every node elects"),
                first,
                "disagreement at node {v}"
            );
        }
        first
    }

    #[test]
    fn single_source_elects_itself() {
        let g = generators::erdos_renyi_connected(30, 0.2, 1).unwrap();
        let net = Network::kt1(g, 1);
        let report = run(&net, &WakeSchedule::single(NodeId::new(4)), 2);
        assert!(report.all_awake);
        let leader = agreed_leader(&report);
        assert_eq!(leader, net.ids().id(NodeId::new(4)));
    }

    #[test]
    fn multi_source_agreement_across_seeds() {
        let g = generators::erdos_renyi_connected(40, 0.12, 2).unwrap();
        let awake: Vec<NodeId> = (0..40).step_by(5).map(NodeId::new).collect();
        let net = Network::kt1(g, 2);
        for seed in 0..6 {
            let report = run(&net, &WakeSchedule::all_at_zero(&awake), seed);
            assert!(report.all_awake, "seed {seed}");
            let leader = agreed_leader(&report);
            // The leader must be one of the adversary-woken nodes.
            assert!(
                awake.iter().any(|&v| net.ids().id(v) == leader),
                "seed {seed}: leader {leader} was never woken by the adversary"
            );
        }
    }

    #[test]
    fn agreement_under_random_delays_and_staggered_wakes() {
        let g = generators::grid(5, 6).unwrap();
        let net = Network::kt1(g, 3);
        let awake: Vec<NodeId> = vec![NodeId::new(0), NodeId::new(29), NodeId::new(14)];
        let schedule = WakeSchedule::staggered(&awake, 11.0);
        for seed in 0..5 {
            let mut delays = RandomDelay::new(seed);
            let config = AsyncConfig {
                seed,
                ..AsyncConfig::default()
            };
            let report =
                AsyncEngine::<LeaderElect>::new(&net, config).run_with(&schedule, &mut delays);
            assert!(report.all_awake);
            agreed_leader(&report);
        }
    }

    #[test]
    fn message_overhead_linear_over_dfs() {
        let n = 50usize;
        let g = generators::erdos_renyi_connected(n, 0.15, 4).unwrap();
        let net = Network::kt1(g, 4);
        let report = run(&net, &WakeSchedule::single(NodeId::new(0)), 5);
        // One token DFS (≤ 2(n−1)) plus one announcement flood (2m would be
        // the worst case, but each node forwards the winning announcement
        // once: ≤ sum of degrees).
        let m = net.graph().m() as u64;
        assert!(
            report.metrics.messages_sent <= 2 * (n as u64) + 2 * m,
            "messages {}",
            report.metrics.messages_sent
        );
    }

    #[test]
    fn works_on_trees() {
        let g = generators::random_tree(35, 9).unwrap();
        let net = Network::kt1(g, 9);
        let awake: Vec<NodeId> = vec![NodeId::new(1), NodeId::new(20)];
        let report = run(&net, &WakeSchedule::all_at_zero(&awake), 6);
        assert!(report.all_awake);
        agreed_leader(&report);
    }
}
