//! Theorem 4: synchronous KT1 LOCAL wake-up in `10·ρ_awk` rounds with
//! `O(n^{3/2} √log n)` messages w.h.p. — the paper's `FastWakeUp`.
//!
//! Every adversary-woken node becomes *active* and runs a 10-round program:
//!
//! 1. **Sampling** (local round 1): become a *root* with probability
//!    `√(ln n / n)`.
//! 2. **BFS construction** (9 rounds): roots build a depth-3 BFS tree using
//!    the neighbor-list technique of \[DPRS24\]: invite level 1, collect their
//!    neighbor lists, compute the level-2 edge set `S₂` centrally, push it
//!    down, repeat one level deeper for `S₃`.
//! 3. **Broadcast** (local round 10): a node still active after 9 rounds
//!    broadcasts `⟨activate!⟩` to all neighbors and deactivates.
//! 4. **Status updates**: joining a tree at level 1/2 schedules deactivation
//!    for the round the tree completes (suppressing the node's broadcast —
//!    this is where the message savings come from); joining at level 3 while
//!    asleep makes a node active; `⟨activate!⟩` wakes sleepers into active.
//!
//! Tree participation (replying with neighbor lists, forwarding edge sets) is
//! unconditional — only the *status* transitions depend on a node's state —
//! which is what makes Lemma 9 ("when a node deactivates, all its neighbors
//! are awake") hold.

use std::sync::Arc;

use wakeup_graph::rng::Xoshiro256;
use wakeup_sim::{Context, Inbox, Incoming, NodeInit, Payload, SyncProtocol, WakeCause};

/// FastWakeUp messages (LOCAL model — neighbor lists may be large).
///
/// The list payloads are `Arc`-shared: a neighbor list or edge set is built
/// once and every copy of the message holds the same allocation. The
/// `size_bits` accounting is unchanged — sharing is a simulator-level
/// optimization, the *model* still charges for the full list per message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FwMsg {
    /// Root → all neighbors: join my tree at level 1.
    Invite1 {
        /// Root's ID (tags the tree).
        root: u64,
    },
    /// Level-1 node → root: my neighbor list.
    NbrList1 {
        /// Tree tag.
        root: u64,
        /// The sender's full neighbor ID list.
        nbrs: Arc<Vec<u64>>,
    },
    /// Root → all neighbors: the level-1→2 BFS edge set `S₂`.
    Edges2 {
        /// Tree tag.
        root: u64,
        /// `(level-1 parent, level-2 child)` pairs.
        edges: Arc<Vec<(u64, u64)>>,
    },
    /// Level-1 node → its assigned level-2 children: join at level 2.
    Invite2 {
        /// Tree tag.
        root: u64,
    },
    /// Level-2 node → its level-1 parent: my neighbor list.
    NbrList2 {
        /// Tree tag.
        root: u64,
        /// The sender's full neighbor ID list.
        nbrs: Arc<Vec<u64>>,
    },
    /// Level-1 node → root: collected level-2 neighbor lists.
    FwdLists {
        /// Tree tag.
        root: u64,
        /// `(level-2 child, its neighbor list)` pairs.
        lists: Vec<(u64, Arc<Vec<u64>>)>,
    },
    /// Root → a level-1 node: the `S₃` edges in that node's subtree.
    Edges3 {
        /// Tree tag.
        root: u64,
        /// `(level-2 parent, level-3 child)` pairs.
        edges: Vec<(u64, u64)>,
    },
    /// Level-1 node → a level-2 child: its share of `S₃`.
    Edges3Fwd {
        /// Tree tag.
        root: u64,
        /// `(level-2 parent, level-3 child)` pairs for the recipient.
        edges: Vec<(u64, u64)>,
    },
    /// Level-2 node → its level-3 children: join (and wake into active).
    Invite3 {
        /// Tree tag.
        root: u64,
    },
    /// The broadcast step's `⟨activate!⟩`.
    Activate,
}

impl Payload for FwMsg {
    fn size_bits(&self) -> usize {
        let tag = 4;
        tag + match self {
            FwMsg::Invite1 { .. } | FwMsg::Invite2 { .. } | FwMsg::Invite3 { .. } => 64,
            FwMsg::NbrList1 { nbrs, .. } | FwMsg::NbrList2 { nbrs, .. } => 64 + 64 * nbrs.len(),
            FwMsg::Edges2 { edges, .. } => 64 + 128 * edges.len(),
            FwMsg::Edges3 { edges, .. } | FwMsg::Edges3Fwd { edges, .. } => 64 + 128 * edges.len(),
            FwMsg::FwdLists { lists, .. } => {
                64 + lists.iter().map(|(_, l)| 64 + 64 * l.len()).sum::<usize>()
            }
            FwMsg::Activate => 0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Awake and running the 10-round program.
    Active,
    /// Awake only to serve tree duties; deactivation scheduled.
    Dormant,
    /// Done; will never broadcast.
    Deactivated,
}

#[derive(Debug, Default)]
struct RootState {
    /// `(level-1 sender, its neighbor list)` in arrival order. Senders are
    /// unique (a root invites each neighbor exactly once), and the `S₂`
    /// computation is order-independent, so a flat push-vector replaces the
    /// old `BTreeMap` without changing any output.
    nbr_lists: Vec<(u64, Arc<Vec<u64>>)>,
    /// `S₂` as `(level-1 parent, level-2 child)`, sorted by child. Shared
    /// behind an `Arc` so every `Edges2` message down the tree reuses the one
    /// allocation the root computed (no per-send clone of the edge set).
    edges2: Arc<Vec<(u64, u64)>>,
    /// The level-2 node set, sorted ascending (binary-searchable).
    l2: Vec<u64>,
    expect_fwd: usize,
    got_fwd: usize,
    l2_lists: Vec<(u64, Arc<Vec<u64>>)>,
    edges2_sent: bool,
    edges3_sent: bool,
}

#[derive(Debug, Default)]
struct L1State {
    /// Assigned level-2 children, sorted ascending (inherits the by-child
    /// order of `edges2`).
    children: Vec<u64>,
    lists: Vec<(u64, Arc<Vec<u64>>)>,
    forwarded: bool,
}

/// The Theorem 4 protocol with the sampling probability scaled by
/// `PCT / 100` — the ablation knob for the `ablation_sampling` bench.
/// `PCT = 100` is the paper's `√(ln n / n)`.
pub type FastWakeUpScaled<const PCT: u32> = FastWakeUpImpl<PCT>;

/// The Theorem 4 protocol. Requires a KT1 network and the sync engine.
pub type FastWakeUp = FastWakeUpImpl<100>;

/// Implementation of [`FastWakeUp`], generic over the sampling-probability
/// scale (in percent).
#[derive(Debug)]
pub struct FastWakeUpImpl<const PCT: u32> {
    id: u64,
    /// Sorted ascending (from `NodeInit::neighbor_ids`); shared so every
    /// `NbrList*` message reuses this allocation instead of cloning it.
    neighbors: Arc<Vec<u64>>,
    rng: Xoshiro256,
    root_probability: f64,
    status: Status,
    local_round: u32,
    sampled: bool,
    /// Whether this node sampled itself as a root (diagnostics).
    pub is_root: bool,
    deactivate_at: Option<u32>,
    deactivated_at: Option<u32>,
    broadcasted: bool,
    root_state: Option<RootState>,
    /// Per-tree level-1 state; a node joins few trees, so a linear-scan
    /// vector beats the old `BTreeMap` (no per-tree allocation, no pointer
    /// chasing). Never iterated, so map order was irrelevant.
    l1: Vec<(u64, L1State)>,
    /// `(root, my level-1 parent)` per tree joined at level 2.
    l2: Vec<(u64, u64)>,
}

impl<const PCT: u32> FastWakeUpImpl<PCT> {
    /// Whether this node has deactivated (post-run introspection for the
    /// Lemma 11 checks).
    pub fn is_deactivated(&self) -> bool {
        self.status == Status::Deactivated
    }

    /// The local round (1-based, counted from this node's wake-up) in which
    /// it deactivated, if it has.
    pub fn deactivated_at_local_round(&self) -> Option<u32> {
        self.deactivated_at
    }

    /// Local rounds this node has executed since waking (0 = never woke).
    pub fn local_rounds_run(&self) -> u32 {
        self.local_round
    }

    fn apply_scheduled_deactivation(&mut self) {
        if let Some(at) = self.deactivate_at {
            if self.local_round >= at && self.status != Status::Deactivated {
                self.status = Status::Deactivated;
                self.deactivated_at = Some(self.local_round);
            }
        }
    }

    fn schedule_deactivation(&mut self, at_local_round: u32) {
        self.deactivate_at = Some(match self.deactivate_at {
            Some(existing) => existing.min(at_local_round),
            None => at_local_round,
        });
    }

    fn l1_state(&mut self, root: u64) -> Option<&mut L1State> {
        self.l1.iter_mut().find(|(r, _)| *r == root).map(|(_, s)| s)
    }

    fn handle_tree_message(
        &mut self,
        ctx: &mut Context<'_, FwMsg>,
        from: Incoming,
        msg: FwMsg,
        was_asleep: bool,
    ) {
        let sender = from.sender_id.expect("FastWakeUp requires KT1");
        match msg {
            FwMsg::Invite1 { root } => {
                // Join at level 1 and report my neighborhood.
                if self.l1.iter().all(|&(r, _)| r != root) {
                    self.l1.push((root, L1State::default()));
                }
                self.schedule_deactivation(self.local_round + 8);
                ctx.send_to_id(
                    sender,
                    FwMsg::NbrList1 {
                        root,
                        nbrs: Arc::clone(&self.neighbors),
                    },
                );
            }
            FwMsg::NbrList1 { root: _, nbrs } => {
                if let Some(rs) = self.root_state.as_mut() {
                    // Senders are distinct (one Invite1 per neighbor), so a
                    // push is the old map insert.
                    rs.nbr_lists.push((sender, nbrs));
                }
            }
            FwMsg::Edges2 { root, edges } => {
                let children: Vec<u64> = edges
                    .iter()
                    .filter(|&&(p, _)| p == self.id)
                    .map(|&(_, c)| c)
                    .collect();
                for &c in &children {
                    ctx.send_to_id(c, FwMsg::Invite2 { root });
                }
                if let Some(state) = self.l1_state(root) {
                    state.children = children;
                }
            }
            FwMsg::Invite2 { root } => {
                self.l2.push((root, sender));
                self.schedule_deactivation(self.local_round + 5);
                ctx.send_to_id(
                    sender,
                    FwMsg::NbrList2 {
                        root,
                        nbrs: Arc::clone(&self.neighbors),
                    },
                );
            }
            FwMsg::NbrList2 { root, nbrs } => {
                if let Some(state) = self.l1_state(root) {
                    state.lists.push((sender, nbrs));
                    if !state.forwarded && state.lists.len() == state.children.len() {
                        state.forwarded = true;
                        // All children reported — no further NbrList2 can
                        // arrive for this tree, so hand the collected lists
                        // over instead of cloning them.
                        let lists = std::mem::take(&mut state.lists);
                        ctx.send_to_id(root, FwMsg::FwdLists { root, lists });
                    }
                }
            }
            FwMsg::FwdLists { root: _, lists } => {
                if let Some(rs) = self.root_state.as_mut() {
                    rs.got_fwd += 1;
                    rs.l2_lists.extend(lists);
                    if rs.got_fwd == rs.expect_fwd && !rs.edges3_sent {
                        self.send_edges3(ctx);
                    }
                }
            }
            FwMsg::Edges3 { root, edges } => {
                // Group by the level-2 parent among my children and forward.
                // A stable sort by parent reproduces the old BTreeMap pass
                // exactly: groups go out in ascending-parent order, and each
                // group keeps the incoming edge order.
                if let Some(state) = self.l1_state(root) {
                    let mut mine: Vec<(u64, u64)> = edges
                        .iter()
                        .filter(|&&(p, _)| state.children.binary_search(&p).is_ok())
                        .copied()
                        .collect();
                    mine.sort_by_key(|&(p, _)| p);
                    let mut i = 0;
                    while i < mine.len() {
                        let p = mine[i].0;
                        let mut j = i;
                        while j < mine.len() && mine[j].0 == p {
                            j += 1;
                        }
                        ctx.send_to_id(
                            p,
                            FwMsg::Edges3Fwd {
                                root,
                                edges: mine[i..j].to_vec(),
                            },
                        );
                        i = j;
                    }
                }
            }
            FwMsg::Edges3Fwd { root, edges } => {
                for &(p, c) in &edges {
                    if p == self.id {
                        ctx.send_to_id(c, FwMsg::Invite3 { root });
                    }
                }
            }
            FwMsg::Invite3 { .. } => {
                // "If w is asleep and joins a BFS tree as a level-3 node, it
                // becomes active."
                if was_asleep && self.status == Status::Dormant {
                    self.status = Status::Active;
                }
            }
            FwMsg::Activate => {
                if was_asleep && self.status == Status::Dormant {
                    self.status = Status::Active;
                }
            }
        }
    }

    /// Root: compute `S₂` from the collected level-1 neighbor lists and push
    /// it down; runs once all level-1 lists have arrived.
    ///
    /// The old implementation kept a `BTreeMap<child, min parent>`; here the
    /// same result comes from sorting all `(child, parent)` candidates and
    /// deduping by child — sorting puts the minimum parent first, and
    /// `dedup_by_key` keeps the first entry of each run, so the surviving
    /// pairs are exactly the map's `(child, min parent)` entries in
    /// ascending-child order.
    fn send_edges2(&mut self, ctx: &mut Context<'_, FwMsg>) {
        ctx.phase("fw:construct");
        let rs = self.root_state.as_mut().expect("only roots compute S2");
        rs.edges2_sent = true;
        let mut pairs: Vec<(u64, u64)> = Vec::new(); // (level-2 child, level-1 parent)
        for (v, nbrs) in &rs.nbr_lists {
            // Both lists are sorted ascending, so membership in my own
            // neighborhood is a linear merge scan instead of a binary search
            // per element. The final sort below makes the output independent
            // of push order anyway (ties are full-pair equal).
            let mut ni = 0;
            for &w in nbrs.iter() {
                while ni < self.neighbors.len() && self.neighbors[ni] < w {
                    ni += 1;
                }
                let is_nbr = ni < self.neighbors.len() && self.neighbors[ni] == w;
                if w != self.id && !is_nbr {
                    pairs.push((w, *v));
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup_by_key(|&mut (c, _)| c);
        rs.edges2 = Arc::new(pairs.iter().map(|&(c, p)| (p, c)).collect());
        rs.l2 = pairs.iter().map(|&(c, _)| c).collect();
        let mut parents: Vec<u64> = rs.edges2.iter().map(|&(p, _)| p).collect();
        parents.sort_unstable();
        parents.dedup();
        rs.expect_fwd = parents.len();
        if rs.edges2.is_empty() {
            // No level 2: the construction ends here.
            rs.edges3_sent = true;
        } else {
            let edges = Arc::clone(&rs.edges2);
            for &v in self.neighbors.iter() {
                ctx.send_to_id(
                    v,
                    FwMsg::Edges2 {
                        root: self.id,
                        edges: Arc::clone(&edges),
                    },
                );
            }
        }
    }

    /// Root: compute `S₃` from the level-2 neighbor lists and push each
    /// level-1 subtree its share. Same sort/dedup replacement for the old
    /// min-parent `BTreeMap` as in [`Self::send_edges2`].
    fn send_edges3(&mut self, ctx: &mut Context<'_, FwMsg>) {
        ctx.phase("fw:construct");
        let rs = self.root_state.as_mut().expect("only roots compute S3");
        rs.edges3_sent = true;
        let mut pairs: Vec<(u64, u64)> = Vec::new(); // (level-3 child, level-2 parent)
        for (c2, nbrs) in &rs.l2_lists {
            // Merge scan against the two sorted exclusion sets (my own
            // neighborhood and the level-2 set) — the lists are ascending, so
            // two advancing pointers replace two binary searches per element.
            let (mut ni, mut li) = (0, 0);
            for &w in nbrs.iter() {
                while ni < self.neighbors.len() && self.neighbors[ni] < w {
                    ni += 1;
                }
                while li < rs.l2.len() && rs.l2[li] < w {
                    li += 1;
                }
                let is_nbr = ni < self.neighbors.len() && self.neighbors[ni] == w;
                let is_l2 = li < rs.l2.len() && rs.l2[li] == w;
                if w != self.id && !is_nbr && !is_l2 {
                    pairs.push((w, *c2));
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup_by_key(|&mut (c3, _)| c3);
        if pairs.is_empty() {
            return;
        }
        // Route each S3 edge via the level-1 parent that owns the level-2
        // node; `edges2` is sorted by child, so the lookup is a binary
        // search. The stable sort by level-1 parent reproduces the old
        // nested-BTreeMap emission order: ascending parent, and within a
        // parent the ascending-child order of `pairs`.
        let mut per_l1: Vec<(u64, u64, u64)> = pairs
            .iter()
            .map(|&(c3, p2)| {
                let i = rs
                    .edges2
                    .binary_search_by_key(&p2, |&(_, c)| c)
                    .expect("every level-2 node has a level-1 parent");
                (rs.edges2[i].0, p2, c3)
            })
            .collect();
        per_l1.sort_by_key(|&(p1, _, _)| p1);
        let mut i = 0;
        while i < per_l1.len() {
            let p1 = per_l1[i].0;
            let mut j = i;
            while j < per_l1.len() && per_l1[j].0 == p1 {
                j += 1;
            }
            ctx.send_to_id(
                p1,
                FwMsg::Edges3 {
                    root: self.id,
                    edges: per_l1[i..j].iter().map(|&(_, p2, c3)| (p2, c3)).collect(),
                },
            );
            i = j;
        }
    }
}

impl<const PCT: u32> SyncProtocol for FastWakeUpImpl<PCT> {
    type Msg = FwMsg;

    fn init(init: &NodeInit<'_>) -> Self {
        let n = init.n_hint.max(2) as f64;
        FastWakeUpImpl {
            id: init.id,
            neighbors: Arc::new(
                init.neighbor_ids
                    .expect("FastWakeUp requires the KT1 knowledge mode")
                    .to_vec(),
            ),
            rng: Xoshiro256::seed_from(init.private_seed),
            root_probability: ((n.ln() / n).sqrt() * f64::from(PCT) / 100.0).min(1.0),
            status: Status::Dormant,
            local_round: 0,
            sampled: false,
            is_root: false,
            deactivate_at: None,
            deactivated_at: None,
            broadcasted: false,
            root_state: None,
            l1: Vec::new(),
            l2: Vec::new(),
        }
    }

    fn reinit(&mut self, init: &NodeInit<'_>) {
        // The node's identity (id, neighbor list, sampling probability) is
        // immutable across trials — only re-seed the RNG and reset the
        // mutable protocol state, keeping the `l1`/`l2` allocations.
        self.rng = Xoshiro256::seed_from(init.private_seed);
        self.status = Status::Dormant;
        self.local_round = 0;
        self.sampled = false;
        self.is_root = false;
        self.deactivate_at = None;
        self.deactivated_at = None;
        self.broadcasted = false;
        self.root_state = None;
        self.l1.clear();
        self.l2.clear();
    }

    fn on_wake(&mut self, _ctx: &mut Context<'_, FwMsg>, cause: WakeCause) {
        // Adversary-woken nodes are active; message-woken nodes start dormant
        // and may be upgraded by the waking message (activate!/Invite3).
        if cause == WakeCause::Adversary {
            self.status = Status::Active;
        }
    }

    fn on_round(&mut self, ctx: &mut Context<'_, FwMsg>, inbox: Vec<(Incoming, FwMsg)>) {
        // Legacy entry point: the engine calls the batch hook directly; this
        // forwarder keeps by-value callers (tests, adapters) working.
        let mut inbox = inbox;
        let mut inbox = Inbox::new(&mut inbox);
        self.on_messages_batch(ctx, &mut inbox);
    }

    fn on_messages_batch(&mut self, ctx: &mut Context<'_, FwMsg>, inbox: &mut Inbox<'_, FwMsg>) {
        let was_asleep = self.local_round == 0;
        self.local_round += 1;
        // Scheduled deactivation fires at the start of the round, before the
        // broadcast step — ties go to deactivation (Lemma 13).
        self.apply_scheduled_deactivation();
        while let Some((from, msg)) = inbox.next() {
            self.handle_tree_message(ctx, from, msg, was_asleep);
        }
        self.apply_scheduled_deactivation();
        // Sampling step: every active node, in its first active round.
        if self.status == Status::Active && !self.sampled {
            self.sampled = true;
            ctx.phase("fw:sample");
            if self.rng.bernoulli(self.root_probability) {
                self.is_root = true;
                self.root_state = Some(RootState::default());
                // Root deactivates at the end of the 9-round construction.
                self.schedule_deactivation(self.local_round + 9);
                let nbrs = Arc::clone(&self.neighbors);
                for &v in nbrs.iter() {
                    ctx.send_to_id(v, FwMsg::Invite1 { root: self.id });
                }
                if self.neighbors.is_empty() {
                    self.root_state.as_mut().unwrap().edges2_sent = true;
                    self.root_state.as_mut().unwrap().edges3_sent = true;
                }
            }
        }
        // Root: once all level-1 lists are in, compute and push S2.
        if let Some(rs) = self.root_state.as_ref() {
            if !rs.edges2_sent && rs.nbr_lists.len() == self.neighbors.len() {
                self.send_edges2(ctx);
            }
        }
        // Broadcast step: active for 9 full rounds => broadcast in the 10th.
        if self.status == Status::Active && self.local_round >= 10 && !self.broadcasted {
            self.broadcasted = true;
            ctx.phase("fw:broadcast");
            ctx.broadcast(FwMsg::Activate);
            self.schedule_deactivation(self.local_round + 1);
        }
    }

    fn wants_round(&self) -> bool {
        match self.status {
            Status::Active => self.local_round < 11,
            Status::Dormant => self.deactivate_at.is_some_and(|at| self.local_round < at),
            Status::Deactivated => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wakeup_graph::{algo, generators, NodeId};
    use wakeup_sim::adversary::WakeSchedule;
    use wakeup_sim::{Network, SyncConfig, SyncEngine, TICKS_PER_UNIT};

    fn run(net: &Network, schedule: &WakeSchedule, seed: u64) -> wakeup_sim::RunReport {
        let config = SyncConfig {
            seed,
            max_rounds: 100_000,
            ..SyncConfig::default()
        };
        SyncEngine::<FastWakeUp>::new(net, config).run(schedule)
    }

    fn rounds_to_all_awake(report: &wakeup_sim::RunReport) -> u64 {
        report.metrics.all_awake_tick.expect("all awake") / TICKS_PER_UNIT
    }

    #[test]
    fn single_wake_path_respects_ten_rho() {
        let g = generators::path(12).unwrap();
        let rho = algo::awake_distance(&g, &[NodeId::new(0)]).unwrap() as u64;
        let net = Network::kt1(g, 1);
        for seed in 0..5 {
            let report = run(&net, &WakeSchedule::single(NodeId::new(0)), seed);
            assert!(report.all_awake, "seed {seed}");
            assert!(
                rounds_to_all_awake(&report) <= 10 * rho,
                "seed {seed}: {} rounds > 10ρ = {}",
                rounds_to_all_awake(&report),
                10 * rho
            );
        }
    }

    #[test]
    fn dominating_set_wakes_quickly() {
        // ρ_awk = 1: the star's hub is a dominating set.
        let g = generators::star(40).unwrap();
        let net = Network::kt1(g, 2);
        for seed in 0..5 {
            let report = run(&net, &WakeSchedule::single(NodeId::new(0)), seed);
            assert!(report.all_awake);
            assert!(rounds_to_all_awake(&report) <= 10);
        }
    }

    #[test]
    fn all_awake_on_random_graphs() {
        for seed in 0..4 {
            let g = generators::erdos_renyi_connected(60, 0.08, seed).unwrap();
            let rho = algo::awake_distance(&g, &[NodeId::new(0), NodeId::new(30)]).unwrap() as u64;
            let net = Network::kt1(g, seed);
            let schedule = WakeSchedule::all_at_zero(&[NodeId::new(0), NodeId::new(30)]);
            let report = run(&net, &schedule, seed);
            assert!(report.all_awake, "seed {seed}");
            assert!(
                rounds_to_all_awake(&report) <= 10 * rho.max(1),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn broadcast_suppression_saves_messages_on_complete_graph() {
        // With everyone awake on K_n, sampled roots' trees deactivate all
        // level-1 joiners before the broadcast step; messages stay near
        // #roots * n instead of n^2.
        let n = 64usize;
        let g = generators::complete(n).unwrap();
        let net = Network::kt1(g, 3);
        let all: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        let mut worst = 0u64;
        for seed in 0..3 {
            let report = run(&net, &WakeSchedule::all_at_zero(&all), seed);
            assert!(report.all_awake);
            worst = worst.max(report.metrics.messages_sent);
        }
        let naive = (n * (n - 1)) as u64; // everyone broadcasting activate!
        assert!(
            worst < naive,
            "suppression should beat the naive broadcast: {worst} >= {naive}"
        );
    }

    #[test]
    fn staggered_wakes_still_complete() {
        let g = generators::grid(6, 6).unwrap();
        let nodes = [NodeId::new(0), NodeId::new(35), NodeId::new(17)];
        let net = Network::kt1(g, 4);
        // Rounds 0, 4, 8.
        let schedule =
            WakeSchedule::from_pairs(&[(nodes[0], 0.0), (nodes[1], 4.0), (nodes[2], 8.0)]);
        let report = run(&net, &schedule, 5);
        assert!(report.all_awake);
    }

    #[test]
    fn lemma9_deactivation_only_with_awake_neighbors() {
        // Indirect check: the run completes (all awake) and terminates, which
        // requires that no node deactivated while a neighbor still slept and
        // no further wake-up channel existed.
        for seed in 10..16 {
            let g = generators::erdos_renyi_connected(45, 0.1, seed).unwrap();
            let net = Network::kt1(g, seed);
            let report = run(&net, &WakeSchedule::single(NodeId::new(7)), seed);
            assert!(report.all_awake, "seed {seed}");
            assert!(!report.truncated);
        }
    }

    #[test]
    fn message_growth_is_subquadratic() {
        // Fix the worst case for broadcast-based algorithms (all nodes awake,
        // dense graph) and check the n^{3/2}-ish envelope.
        let mut prev_ratio = f64::INFINITY;
        for &n in &[32usize, 64, 128] {
            let g = generators::complete(n).unwrap();
            let net = Network::kt1(g, 9);
            let all: Vec<NodeId> = (0..n).map(NodeId::new).collect();
            let report = run(&net, &WakeSchedule::all_at_zero(&all), 1);
            let msgs = report.metrics.messages_sent as f64;
            let envelope = (n as f64).powf(1.5) * (n as f64).ln().sqrt();
            let ratio = msgs / envelope;
            // The constant is modest and does not blow up with n.
            assert!(ratio < 16.0, "n={n}: ratio {ratio}");
            // Allow fluctuation but catch a quadratic trend: the ratio should
            // not keep doubling.
            assert!(ratio < prev_ratio * 2.0, "n={n} ratio grew too fast");
            prev_ratio = ratio;
        }
    }

    #[test]
    fn lemma11_every_node_deactivates_within_eleven_local_rounds() {
        // Lemma 11: a node waking in round r deactivates by the end of round
        // r + 10 — i.e. within 11 local rounds.
        for seed in 0..4 {
            let g = generators::erdos_renyi_connected(50, 0.1, seed).unwrap();
            let net = Network::kt1(g, seed);
            let config = SyncConfig {
                seed,
                ..SyncConfig::default()
            };
            let (report, protocols) = SyncEngine::<FastWakeUp>::new(&net, config)
                .run_into_parts(&WakeSchedule::single(NodeId::new(0)));
            assert!(report.all_awake, "seed {seed}");
            for (v, p) in protocols.iter().enumerate() {
                assert!(
                    p.is_deactivated(),
                    "seed {seed}: node {v} never deactivated (status leak keeps rounds running)"
                );
                let at = p.deactivated_at_local_round().unwrap();
                assert!(
                    at <= 11,
                    "seed {seed}: node {v} deactivated at local round {at} > 11"
                );
            }
        }
    }

    #[test]
    fn root_sampling_rate_close_to_expected() {
        let n = 128usize;
        let g = generators::complete(n).unwrap();
        let net = Network::kt1(g, 11);
        let all: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        let config = SyncConfig {
            seed: 21,
            ..SyncConfig::default()
        };
        let engine = SyncEngine::<FastWakeUp>::new(&net, config);
        let report = engine.run(&WakeSchedule::all_at_zero(&all));
        assert!(report.all_awake);
        // We cannot read protocol state post-run via the public API; instead
        // sanity-check the message count implies a plausible number of trees.
        let msgs = report.metrics.messages_sent;
        assert!(msgs > 0);
    }
}
