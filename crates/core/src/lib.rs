//! The wake-up algorithms of Robinson & Tan, *"Rise and Shine Efficiently!
//! The Complexity of Adversarial Wake-up in Asynchronous Networks"*
//! (PODC 2025), implemented over the [`wakeup_sim`] runtime.
//!
//! # Algorithm inventory
//!
//! | Module | Paper result | Model | Guarantees |
//! |---|---|---|---|
//! | [`flooding`] | baseline (Sec. 1.2) | any | ρ_awk time, Θ(m) messages |
//! | [`dfs_rank`] | Theorem 3 | async KT1 LOCAL | O(n log n) time & messages w.h.p. |
//! | [`dfs_congest`] | why Thm 3 needs LOCAL | async KT1 CONGEST | correct, but Θ(m) messages (bounce overhead) |
//! | [`fast_wakeup`] | Theorem 4 | sync KT1 LOCAL | 10·ρ_awk rounds, O(n^{3/2}√log n) messages w.h.p. |
//! | [`advice::bfs_tree`] | Corollary 1 | async KT0 CONGEST | O(D) time, O(n) msgs, max advice O(n), avg O(log n) |
//! | [`advice::threshold`] | Theorem 5(A) | async KT0 CONGEST | O(D) time, O(n^{3/2}) msgs, max advice O(√n log n) |
//! | [`advice::cen`] | Theorem 5(B) | async KT0 CONGEST | O(D log n) time, O(n) msgs, max advice O(log n) |
//! | [`advice::spanner`] | Theorem 6 / Corollary 2 | async KT0 CONGEST | O(k·ρ_awk·log n) time, O(k·n^{1+1/k} log n) msgs, max advice O(n^{1/k} log² n) |
//! | [`gossip`] | Appendix D (simplified) | sync KT1 LOCAL | polylog phases on 𝒢ₖ (measured, see DESIGN.md) |
//! | [`nih`] | Lemma 1 (generic adapter) | async, KT0/KT1 | wake-up → needles-in-haystack at +n messages, +1 time |
//! | [`leader`] | extension (Sec. 1.3 motivation) | async KT1 LOCAL | leader election under adversarial wake-up |
//!
//! # Quick start
//!
//! ```
//! use wakeup_core::{dfs_rank::DfsRank, harness};
//! use wakeup_graph::{generators, NodeId};
//! use wakeup_sim::{adversary::WakeSchedule, Network};
//!
//! let net = Network::kt1(generators::erdos_renyi_connected(50, 0.1, 7)?, 7);
//! let run = harness::run_async::<DfsRank>(&net, &WakeSchedule::single(NodeId::new(0)), 1);
//! assert!(run.report.all_awake);
//! # Ok::<(), wakeup_graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advice;
pub mod dfs_congest;
pub mod dfs_rank;
pub mod energy;
pub mod fast_wakeup;
pub mod flooding;
pub mod gossip;
pub mod harness;
pub mod leader;
pub mod nih;
