//! Lemma 1: the reduction from wake-up to the needles-in-haystack (𝖭𝖨𝖧)
//! problem, as a generic protocol adapter.
//!
//! Given *any* asynchronous wake-up protocol `P`, [`Nih<P>`] runs `P`
//! unchanged while adding the Lemma 1 instrumentation:
//!
//! * every degree-1 node (the `W`-side of the lower-bound families — the
//!   only degree-1 nodes there) sends one special `Response` message back on
//!   its single port upon waking;
//! * every other node, upon receiving a `Response`, outputs the 𝖭𝖨𝖧 answer:
//!   the arrival port number under KT0, or the responder's ID under KT1.
//!
//! The overhead matches Lemma 1 exactly: at most `n` extra messages and one
//! extra time unit. Both lower-bound experiments build on this reduction;
//! the adapter makes it available for *any* algorithm, so one can, for
//! example, measure how many messages `DfsRank` needs before every center
//! knows its crucial neighbor.

use wakeup_sim::{
    AsyncProtocol, Context, Inbox, Incoming, NodeInit, Payload, ScopedBuf, WakeCause,
};

/// Message wrapper: the inner protocol's traffic plus the Lemma 1 response.
#[derive(Debug, Clone)]
pub enum NihMsg<M> {
    /// A message of the wrapped protocol.
    Inner(M),
    /// The degree-1 responder's special message (distinct from everything
    /// the inner protocol produces, as the lemma requires).
    Response,
}

impl<M: Payload> Payload for NihMsg<M> {
    fn size_bits(&self) -> usize {
        match self {
            NihMsg::Inner(m) => 1 + m.size_bits(),
            NihMsg::Response => 1,
        }
    }
}

/// The Lemma 1 adapter around an inner wake-up protocol.
#[derive(Debug)]
pub struct Nih<P: AsyncProtocol> {
    inner: P,
    degree: usize,
    responded: bool,
    /// Recycled staging buffer for the inner protocol's handlers — one
    /// allocation per node for the whole run instead of one per event.
    inner_outbox: ScopedBuf<P::Msg>,
    /// Recycled buffer of unwrapped inner messages for batched delivery.
    batch_buf: Vec<(Incoming, P::Msg)>,
}

impl<P: AsyncProtocol> Nih<P> {
    fn run_inner<R>(
        &mut self,
        ctx: &mut Context<'_, NihMsg<P::Msg>>,
        f: impl FnOnce(&mut P, &mut Context<'_, P::Msg>) -> R,
    ) -> R {
        let inner = &mut self.inner;
        ctx.scoped_with(
            &mut self.inner_outbox,
            |inner_ctx| f(inner, inner_ctx),
            NihMsg::Inner,
        )
    }

    /// Hands a buffered run of consecutive `Inner` messages to the inner
    /// protocol's own batch hook, in delivery order.
    fn flush_inner_run(
        &mut self,
        ctx: &mut Context<'_, NihMsg<P::Msg>>,
        run: &mut Vec<(Incoming, P::Msg)>,
    ) {
        let inner = &mut self.inner;
        ctx.scoped_with(
            &mut self.inner_outbox,
            |inner_ctx| {
                let mut inbox = Inbox::new(run);
                inner.on_messages_batch(inner_ctx, &mut inbox);
            },
            NihMsg::Inner,
        );
    }
}

impl<P: AsyncProtocol> AsyncProtocol for Nih<P> {
    type Msg = NihMsg<P::Msg>;

    fn init(init: &NodeInit<'_>) -> Self {
        Nih {
            inner: P::init(init),
            degree: init.degree,
            responded: false,
            inner_outbox: ScopedBuf::default(),
            batch_buf: Vec::new(),
        }
    }

    fn reinit(&mut self, init: &NodeInit<'_>) {
        self.inner.reinit(init);
        self.degree = init.degree;
        self.responded = false;
    }

    fn on_wake(&mut self, ctx: &mut Context<'_, Self::Msg>, cause: WakeCause) {
        // Degree-1 nodes respond upon their (message-caused) wake-up.
        if self.degree == 1 && cause == WakeCause::Message && !self.responded {
            self.responded = true;
            ctx.send(wakeup_sim::Port::new(1), NihMsg::Response);
        }
        self.run_inner(ctx, |p, c| p.on_wake(c, cause));
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: Incoming, msg: Self::Msg) {
        match msg {
            NihMsg::Response => {
                // The NIH output: the port (KT0) or the responder ID (KT1).
                let answer = from.sender_id.unwrap_or(from.port.number() as u64);
                ctx.output(answer);
            }
            NihMsg::Inner(m) => {
                self.run_inner(ctx, |p, c| p.on_message(c, from, m));
            }
        }
    }

    fn on_messages_batch(
        &mut self,
        ctx: &mut Context<'_, Self::Msg>,
        inbox: &mut Inbox<'_, Self::Msg>,
    ) {
        // Process the inbox strictly in delivery order: runs of consecutive
        // `Inner` messages are unwrapped into one batch for the inner
        // protocol, and every `Response` flushes the pending run first so
        // output-overwrite order is exactly that of per-message dispatch.
        let mut run = std::mem::take(&mut self.batch_buf);
        debug_assert!(run.is_empty());
        while let Some((from, msg)) = inbox.next() {
            match msg {
                NihMsg::Response => {
                    if !run.is_empty() {
                        self.flush_inner_run(ctx, &mut run);
                    }
                    let answer = from.sender_id.unwrap_or(from.port.number() as u64);
                    ctx.output(answer);
                }
                NihMsg::Inner(m) => run.push((from, m)),
            }
        }
        if !run.is_empty() {
            self.flush_inner_run(ctx, &mut run);
        }
        self.batch_buf = run;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs_rank::DfsRank;
    use crate::flooding::FloodAsync;
    use wakeup_graph::families::{ClassG, ClassGk};
    use wakeup_graph::NodeId;
    use wakeup_sim::adversary::WakeSchedule;
    use wakeup_sim::{AsyncConfig, AsyncEngine, Network};

    #[test]
    fn flooding_solves_nih_on_class_g_kt0() {
        let fam = ClassG::new(16).unwrap();
        let net = Network::kt0(fam.graph().clone(), 3);
        let schedule = WakeSchedule::all_at_zero(&fam.centers());
        let report =
            AsyncEngine::<Nih<FloodAsync>>::new(&net, AsyncConfig::default()).run(&schedule);
        assert!(report.all_awake);
        for (v, w) in fam.crucial_pairs() {
            let out = report.outputs[v.index()].expect("center must output");
            let port = wakeup_sim::Port::new(out as usize);
            assert_eq!(
                net.ports().neighbor(v, port),
                w,
                "KT0 output is the crucial port"
            );
        }
    }

    #[test]
    fn dfs_rank_solves_nih_on_class_gk_kt1() {
        let fam = ClassGk::new(3, 3, 5).unwrap();
        let net = Network::kt1(fam.graph().clone(), 5);
        let schedule = WakeSchedule::all_at_zero(&fam.centers());
        let report = AsyncEngine::<Nih<DfsRank>>::new(&net, AsyncConfig::default()).run(&schedule);
        assert!(report.all_awake);
        for (v, w) in fam.crucial_pairs() {
            let out = report.outputs[v.index()].expect("center must output");
            assert_eq!(
                out,
                net.ids().id(w),
                "KT1 output is the crucial neighbor's ID"
            );
        }
    }

    #[test]
    fn overhead_is_at_most_n_messages() {
        let fam = ClassG::new(12).unwrap();
        let n3 = fam.graph().n() as u64;
        let net = Network::kt0(fam.graph().clone(), 1);
        let schedule = WakeSchedule::all_at_zero(&fam.centers());
        let plain = AsyncEngine::<FloodAsync>::new(&net, AsyncConfig::default()).run(&schedule);
        let wrapped =
            AsyncEngine::<Nih<FloodAsync>>::new(&net, AsyncConfig::default()).run(&schedule);
        assert!(wrapped.metrics.messages_sent <= plain.metrics.messages_sent + n3);
    }

    #[test]
    fn non_matching_degree_one_nodes_also_respond_harmlessly() {
        // On a path, endpoints have degree 1; they respond and their single
        // neighbor outputs — the adapter never breaks the inner protocol.
        let g = wakeup_graph::generators::path(6).unwrap();
        let net = Network::kt0(g, 2);
        let report = AsyncEngine::<Nih<FloodAsync>>::new(&net, AsyncConfig::default())
            .run(&WakeSchedule::single(NodeId::new(2)));
        assert!(report.all_awake);
        assert!(report.outputs[1].is_some());
        assert!(report.outputs[4].is_some());
    }
}
