//! The omniscient-oracle upper bound: what advice buys when the oracle knows
//! the initially-awake set.
//!
//! Theorem 1's lower bound explicitly holds "even if the oracle knows the
//! set of awake nodes", so the natural question is what the matching upper
//! bound looks like in that stronger model: the oracle computes a
//! multi-source BFS forest from `A₀` and hands every node its forest ports.
//! Waking then takes exactly `ρ_awk` time with at most `2(n−1)` messages and
//! O(log n) average advice — simultaneously optimal in all three measures.
//!
//! This is the yardstick the oblivious schemes of Section 4 are compared
//! against: Corollary 2 matches it up to polylog factors *without* knowing
//! `A₀`, which is exactly the paper's "optimal in all three complexity
//! measures up to polylogarithmic factors" claim.

use wakeup_graph::{algo, NodeId};
use wakeup_sim::adversary::WakeSchedule;
use wakeup_sim::{BitStr, Network, Port};

use super::bfs_tree::{encode_ports, TreeWake};
use super::AdvisingScheme;

/// The awake-set-aware scheme (multi-source BFS forest advice).
#[derive(Debug, Clone)]
pub struct OmniscientScheme {
    awake: Vec<NodeId>,
}

impl OmniscientScheme {
    /// Builds the scheme for a known initially-awake set.
    ///
    /// # Panics
    ///
    /// Panics on an empty awake set (no oracle can help then).
    pub fn new(awake: Vec<NodeId>) -> OmniscientScheme {
        assert!(!awake.is_empty(), "the awake set must be nonempty");
        OmniscientScheme { awake }
    }

    /// Convenience: reads the awake set off a schedule's time-zero entries.
    pub fn for_schedule(schedule: &WakeSchedule) -> OmniscientScheme {
        OmniscientScheme::new(schedule.initially_awake())
    }
}

impl AdvisingScheme for OmniscientScheme {
    type Protocol = TreeWake;

    fn advise(&self, net: &Network) -> Vec<BitStr> {
        let g = net.graph();
        let forest = algo::multi_source_bfs(g, &self.awake);
        (0..g.n())
            .map(|vi| {
                let v = NodeId::new(vi);
                // Children only: waking flows *away* from A₀, so no node ever
                // needs to push toward its parent.
                let ports: Vec<Port> = forest
                    .children(v)
                    .iter()
                    .map(|&c| net.ports().port_to(v, c).expect("forest edge"))
                    .collect();
                encode_ports(&ports, g.degree(v))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advice::run_scheme;
    use wakeup_graph::generators;
    use wakeup_sim::advice::AdviceStats;

    #[test]
    fn optimal_in_all_three_measures() {
        let g = generators::erdos_renyi_connected(80, 0.08, 3).unwrap();
        let awake: Vec<NodeId> = (0..80).step_by(20).map(NodeId::new).collect();
        let rho = algo::awake_distance(&g, &awake).unwrap() as f64;
        let n = g.n() as u64;
        let net = Network::kt0(g, 3);
        let schedule = WakeSchedule::all_at_zero(&awake);
        let run = run_scheme(
            &OmniscientScheme::for_schedule(&schedule),
            &net,
            &schedule,
            1,
        );
        assert!(run.report.all_awake);
        // Time exactly ρ_awk (unit delays), messages at most n − |A₀|
        // (every sleeping node receives exactly its forest-parent's push,
        // nothing else).
        assert_eq!(run.report.metrics.wakeup_time_units(), Some(rho));
        assert!(run.report.messages() <= n);
        let stats: &AdviceStats = &run.advice;
        assert!(stats.avg_bits <= 4.0 * (n as f64).log2());
    }

    #[test]
    fn beats_oblivious_schemes_on_time() {
        // On a cycle the oblivious BFS tree (rooted at node 0) cuts the edge
        // opposite the root; an awake antipode must push the wake-up the long
        // way around the tree (~n time), while the omniscient forest uses
        // both arcs (~n/2 — the true ρ_awk).
        let n = 120usize;
        let g = generators::cycle(n).unwrap();
        let awake = vec![NodeId::new(n / 2)];
        let net = Network::kt0(g, 5);
        let schedule = WakeSchedule::all_at_zero(&awake);
        let omni = run_scheme(
            &OmniscientScheme::for_schedule(&schedule),
            &net,
            &schedule,
            2,
        );
        let oblivious = run_scheme(
            &super::super::BfsTreeScheme::rooted_at(NodeId::new(0)),
            &net,
            &schedule,
            2,
        );
        assert!(omni.report.all_awake && oblivious.report.all_awake);
        let t_omni = omni.report.metrics.wakeup_time_units().unwrap();
        let t_obl = oblivious.report.metrics.wakeup_time_units().unwrap();
        assert_eq!(t_omni, (n / 2) as f64, "omniscient time is exactly ρ_awk");
        assert!(
            t_omni * 1.5 < t_obl,
            "omniscient {t_omni} should clearly beat oblivious {t_obl}"
        );
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_awake_set_rejected() {
        OmniscientScheme::new(Vec::new());
    }

    #[test]
    fn single_source_degenerates_to_bfs_tree() {
        let g = generators::grid(5, 5).unwrap();
        let net = Network::kt0(g, 7);
        let schedule = WakeSchedule::single(NodeId::new(12));
        let run = run_scheme(
            &OmniscientScheme::for_schedule(&schedule),
            &net,
            &schedule,
            3,
        );
        assert!(run.report.all_awake);
        assert!(run.report.messages() <= 24);
    }
}
