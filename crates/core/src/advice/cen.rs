//! Theorem 5(B): the child-encoding scheme (𝖢𝖤𝖭) — O(D log n) time, O(n)
//! messages, and a *maximum* advice length of O(log n) bits per node.
//!
//! The obstacle to logarithmic advice is that a node with many BFS children
//! would need to store all their port numbers. 𝖢𝖤𝖭 distributes that
//! information among the children instead: the oracle arranges each node's
//! children in a balanced binary *sibling tree* and gives every node `w` a
//! tuple `(p_w, fc_w, next_w)` —
//!
//! * `p_w`: the port at `w` leading to its parent,
//! * `fc_w`: the port at `w` leading to its *first child* (the sibling-tree
//!   root of `w`'s own children),
//! * `next_w`: a pair of ports **at `w`'s parent** leading to `w`'s two
//!   children in the parent's sibling tree (its *next siblings*).
//!
//! Waking the children of `v` is then a joint traversal: `v` contacts `fc_v`;
//! each contacted child echoes its `next_w` pair back to `v`, which contacts
//! those two ports next, and so on. Every child costs two messages
//! (`WakeChild` + `NextSiblings`) and the traversal completes in
//! O(log deg(v)) time, giving O(D log n) total time and O(n) messages.
//!
//! (The paper's Section 4.2.1 text breaks off mid-description; this protocol
//! is the natural completion consistent with the advice-tuple definition and
//! the stated bounds — see DESIGN.md.)

use wakeup_graph::{algo, NodeId};
use wakeup_sim::{
    AsyncProtocol, BitReader, BitStr, Context, Incoming, Network, NodeInit, Payload, Port,
    WakeCause,
};

use super::AdvisingScheme;

/// One node's 𝖢𝖤𝖭 advice tuple for a single rooted forest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CenEntry {
    /// Port to the tree parent (None at roots).
    pub parent_port: Option<Port>,
    /// Port to the first child (sibling-tree root of this node's children).
    pub first_child_port: Option<Port>,
    /// Ports *at the parent* leading to this node's sibling-tree children.
    pub next_sibling_ports: (Option<Port>, Option<Port>),
}

fn push_opt_port(s: &mut BitStr, p: Option<Port>) {
    match p {
        Some(p) => {
            s.push_bool(true);
            s.push_gamma(p.number() as u64);
        }
        None => s.push_bool(false),
    }
}

fn read_opt_port(r: &mut BitReader<'_>) -> Option<Option<Port>> {
    if r.read_bool()? {
        Some(Some(Port::new(r.read_gamma()? as usize)))
    } else {
        Some(None)
    }
}

/// Serializes a 𝖢𝖤𝖭 tuple (4 optional gamma-coded ports: O(log n) bits).
pub(crate) fn encode_entry(s: &mut BitStr, e: &CenEntry) {
    push_opt_port(s, e.parent_port);
    push_opt_port(s, e.first_child_port);
    push_opt_port(s, e.next_sibling_ports.0);
    push_opt_port(s, e.next_sibling_ports.1);
}

/// Deserializes a 𝖢𝖤𝖭 tuple.
pub(crate) fn decode_entry(r: &mut BitReader<'_>) -> Option<CenEntry> {
    Some(CenEntry {
        parent_port: read_opt_port(r)?,
        first_child_port: read_opt_port(r)?,
        next_sibling_ports: (read_opt_port(r)?, read_opt_port(r)?),
    })
}

/// How the oracle arranges each node's children for the joint traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SiblingLayout {
    /// Balanced binary sibling tree — O(log deg) traversal time (the paper's
    /// scheme).
    #[default]
    Balanced,
    /// Linear chain (each child points to the next) — same advice size and
    /// message count, but Θ(deg) traversal time. The `ablation_cen` bench
    /// measures why the binary tree matters.
    Chain,
}

/// Computes the 𝖢𝖤𝖭 tuples for a rooted forest given as parent/children
/// tables over `net`'s nodes.
///
/// Children are arranged per `layout`; all ports are looked up in `net`'s
/// port assignment. The children accessor returns a borrowed slice (tree and
/// forest structures store children contiguously), so building the tuples
/// never copies a child list.
pub(crate) fn cen_entries<'c>(
    net: &Network,
    parent: impl Fn(NodeId) -> Option<NodeId>,
    children: impl Fn(NodeId) -> &'c [NodeId],
) -> Vec<CenEntry> {
    cen_entries_with(net, parent, children, SiblingLayout::Balanced)
}

pub(crate) fn cen_entries_with<'c>(
    net: &Network,
    parent: impl Fn(NodeId) -> Option<NodeId>,
    children: impl Fn(NodeId) -> &'c [NodeId],
    layout: SiblingLayout,
) -> Vec<CenEntry> {
    let n = net.n();
    let mut entries = vec![CenEntry::default(); n];
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for vi in 0..n {
        let v = NodeId::new(vi);
        if let Some(p) = parent(v) {
            entries[vi].parent_port = Some(net.ports().port_to(v, p).expect("forest edge"));
        }
        let kids = children(v);
        if kids.is_empty() {
            continue;
        }
        let port_to = |w: NodeId| net.ports().port_to(v, w).expect("forest edge");
        match layout {
            SiblingLayout::Chain => {
                entries[vi].first_child_port = Some(port_to(kids[0]));
                for pair in kids.windows(2) {
                    entries[pair[0].index()].next_sibling_ports = (Some(port_to(pair[1])), None);
                }
            }
            SiblingLayout::Balanced => {
                // Balanced binary sibling tree over kids[lo..hi): the median
                // is the subtree root; its sibling-children are the roots of
                // the halves.
                fn mid(lo: usize, hi: usize) -> usize {
                    (lo + hi) / 2
                }
                let root_idx = mid(0, kids.len());
                entries[vi].first_child_port = Some(port_to(kids[root_idx]));
                stack.clear();
                stack.push((0usize, kids.len()));
                while let Some((lo, hi)) = stack.pop() {
                    if lo >= hi {
                        continue;
                    }
                    let m = mid(lo, hi);
                    let child = kids[m];
                    let left = if lo < m { Some(kids[mid(lo, m)]) } else { None };
                    let right = if m + 1 < hi {
                        Some(kids[mid(m + 1, hi)])
                    } else {
                        None
                    };
                    entries[child.index()].next_sibling_ports =
                        (left.map(port_to), right.map(port_to));
                    if lo < m {
                        stack.push((lo, m));
                    }
                    if m + 1 < hi {
                        stack.push((m + 1, hi));
                    }
                }
            }
        }
    }
    entries
}

/// 𝖢𝖤𝖭 protocol messages (all O(log n) bits — CONGEST-compliant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CenMsg {
    /// Child → parent: wake up (sent once per node on its parent port).
    WakeParent,
    /// Parent → child: wake up and echo your next-sibling ports.
    WakeChild,
    /// Child → parent: the two sibling-tree ports to contact next.
    NextSiblings {
        /// Left sibling-tree child port (at the parent).
        left: Option<u32>,
        /// Right sibling-tree child port (at the parent).
        right: Option<u32>,
    },
}

impl Payload for CenMsg {
    fn size_bits(&self) -> usize {
        match self {
            CenMsg::WakeParent | CenMsg::WakeChild => 2,
            CenMsg::NextSiblings { left, right } => {
                let port_bits = |p: &Option<u32>| {
                    1 + p.map_or(0, |x| 64 - u64::from(x).leading_zeros() as usize)
                };
                2 + port_bits(left) + port_bits(right)
            }
        }
    }
}

/// The Theorem 5(B) scheme (𝖢𝖤𝖭 over one BFS tree).
#[derive(Debug, Clone, Default)]
pub struct CenScheme {
    root: Option<NodeId>,
    layout: SiblingLayout,
}

impl CenScheme {
    /// Scheme rooted at node 0.
    pub fn new() -> CenScheme {
        CenScheme {
            root: None,
            layout: SiblingLayout::Balanced,
        }
    }

    /// Scheme with an explicit BFS root.
    pub fn rooted_at(root: NodeId) -> CenScheme {
        CenScheme {
            root: Some(root),
            layout: SiblingLayout::Balanced,
        }
    }

    /// Ablation variant: arrange siblings in a linear chain instead of a
    /// balanced binary tree (same messages, Θ(max degree) time).
    pub fn with_chain_siblings(mut self) -> CenScheme {
        self.layout = SiblingLayout::Chain;
        self
    }
}

impl AdvisingScheme for CenScheme {
    type Protocol = CenWake;

    fn advise(&self, net: &Network) -> Vec<BitStr> {
        // Default to a graph center: the BFS height is then the radius,
        // halving the worst-case wake-up time vs an arbitrary root.
        let root = self
            .root
            .or_else(|| algo::center(net.graph()).map(|(_, c)| c))
            .unwrap_or(NodeId::new(0));
        let tree = algo::bfs_tree(net.graph(), root);
        let entries = cen_entries_with(net, |v| tree.parent(v), |v| tree.children(v), self.layout);
        entries
            .iter()
            .map(|e| {
                let mut s = BitStr::new();
                encode_entry(&mut s, e);
                s
            })
            .collect()
    }
}

/// The node-side 𝖢𝖤𝖭 wake-up state machine.
///
/// Defensive bounds: each node echoes `NextSiblings` at most once and
/// contacts each child port at most once. With honest oracle advice the
/// sibling structure is a tree and these bounds are never hit; with
/// corrupted advice whose pointers form cycles they stop the
/// `WakeChild`/`NextSiblings` echo from looping forever (the run then simply
/// stops early, which is the correct degradation — a broken oracle voids the
/// scheme's contract, not the model's).
#[derive(Debug)]
pub struct CenWake {
    entry: CenEntry,
    started: bool,
    replied: bool,
    contacted: std::collections::BTreeSet<u32>,
}

impl CenWake {
    fn start(&mut self, ctx: &mut Context<'_, CenMsg>) {
        if self.started {
            return;
        }
        self.started = true;
        if let Some(p) = self.entry.parent_port {
            if p.number() <= ctx.degree() {
                ctx.send(p, CenMsg::WakeParent);
            }
        }
        if let Some(fc) = self.entry.first_child_port {
            self.contact_child(ctx, fc.number() as u32);
        }
    }

    fn contact_child(&mut self, ctx: &mut Context<'_, CenMsg>, port: u32) {
        if port == 0 || port as usize > ctx.degree() {
            return; // corrupted advice: out-of-range port
        }
        if self.contacted.insert(port) {
            ctx.send(Port::new(port as usize), CenMsg::WakeChild);
        }
    }
}

impl AsyncProtocol for CenWake {
    type Msg = CenMsg;

    fn init(init: &NodeInit<'_>) -> Self {
        let mut r = BitReader::new(init.advice);
        let entry = decode_entry(&mut r).unwrap_or_default();
        CenWake {
            entry,
            started: false,
            replied: false,
            contacted: std::collections::BTreeSet::new(),
        }
    }

    fn on_wake(&mut self, ctx: &mut Context<'_, CenMsg>, _cause: WakeCause) {
        self.start(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, CenMsg>, from: Incoming, msg: CenMsg) {
        // Any contact wakes this node's own routine.
        self.start(ctx);
        match msg {
            CenMsg::WakeParent => {}
            CenMsg::WakeChild => {
                if self.replied {
                    return; // honest parents contact a child exactly once
                }
                self.replied = true;
                let (l, r) = self.entry.next_sibling_ports;
                ctx.send(
                    from.port,
                    CenMsg::NextSiblings {
                        left: l.map(|p| p.number() as u32),
                        right: r.map(|p| p.number() as u32),
                    },
                );
            }
            CenMsg::NextSiblings { left, right } => {
                for p in [left, right].into_iter().flatten() {
                    self.contact_child(ctx, p);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advice::run_scheme;
    use wakeup_graph::generators;
    use wakeup_sim::adversary::WakeSchedule;
    use wakeup_sim::advice::AdviceStats;

    #[test]
    fn entry_codec_roundtrip() {
        let cases = [
            CenEntry::default(),
            CenEntry {
                parent_port: Some(Port::new(5)),
                first_child_port: None,
                next_sibling_ports: (Some(Port::new(1)), None),
            },
            CenEntry {
                parent_port: Some(Port::new(1)),
                first_child_port: Some(Port::new(900)),
                next_sibling_ports: (Some(Port::new(3)), Some(Port::new(4))),
            },
        ];
        for e in cases {
            let mut s = BitStr::new();
            encode_entry(&mut s, &e);
            let mut r = BitReader::new(&s);
            assert_eq!(decode_entry(&mut r), Some(e));
        }
    }

    #[test]
    fn wakes_everyone_on_varied_graphs() {
        for (g, seed) in [
            (generators::path(40).unwrap(), 0u64),
            (generators::star(80).unwrap(), 1),
            (generators::erdos_renyi_connected(70, 0.08, 2).unwrap(), 2),
            (generators::balanced_tree(3, 4).unwrap(), 3),
        ] {
            let net = Network::kt0(g, seed);
            let run = run_scheme(
                &CenScheme::new(),
                &net,
                &WakeSchedule::single(NodeId::new(0)),
                seed,
            );
            assert!(run.report.all_awake, "seed {seed}");
        }
    }

    #[test]
    fn wake_from_leaf_reaches_root_and_back() {
        let g = generators::star(50).unwrap();
        let net = Network::kt0(g, 7);
        let run = run_scheme(
            &CenScheme::rooted_at(NodeId::new(0)),
            &net,
            &WakeSchedule::single(NodeId::new(33)),
            1,
        );
        assert!(run.report.all_awake);
    }

    #[test]
    fn max_advice_is_logarithmic() {
        // Even on the star (hub has n-1 children), every node stores at most
        // four gamma-coded ports.
        let n = 500usize;
        let g = generators::star(n).unwrap();
        let net = Network::kt0(g, 1);
        let advice = CenScheme::rooted_at(NodeId::new(0)).advise(&net);
        let stats = AdviceStats::measure(&advice);
        let bound = 8 * ((n as f64).log2().ceil() as usize + 2);
        assert!(stats.max_bits <= bound, "max {} > {bound}", stats.max_bits);
    }

    #[test]
    fn messages_linear() {
        let n = 150usize;
        let g = generators::erdos_renyi_connected(n, 0.06, 5).unwrap();
        let net = Network::kt0(g, 5);
        let run = run_scheme(
            &CenScheme::new(),
            &net,
            &WakeSchedule::single(NodeId::new(10)),
            2,
        );
        assert!(run.report.all_awake);
        assert!(
            run.report.metrics.messages_sent <= 3 * n as u64,
            "messages {} above 3n",
            run.report.metrics.messages_sent
        );
    }

    #[test]
    fn time_within_depth_times_log() {
        let n = 200usize;
        let g = generators::star(n).unwrap();
        let net = Network::kt0(g, 2);
        let run = run_scheme(
            &CenScheme::rooted_at(NodeId::new(0)),
            &net,
            &WakeSchedule::single(NodeId::new(0)),
            3,
        );
        assert!(run.report.all_awake);
        // Hub waking n-1 children through the binary sibling tree takes
        // ~2·log2(n) alternations.
        let bound = 2.0 * (n as f64).log2() + 6.0;
        assert!(
            run.report.metrics.wakeup_time_units().unwrap() <= bound,
            "time {} > {bound}",
            run.report.metrics.wakeup_time_units().unwrap()
        );
    }

    #[test]
    fn chain_layout_correct_but_slower_on_stars() {
        let n = 200usize;
        let g = generators::star(n).unwrap();
        let net = Network::kt0(g, 2);
        let schedule = WakeSchedule::single(NodeId::new(0));
        let balanced = run_scheme(&CenScheme::rooted_at(NodeId::new(0)), &net, &schedule, 3);
        let chain = run_scheme(
            &CenScheme::rooted_at(NodeId::new(0)).with_chain_siblings(),
            &net,
            &schedule,
            3,
        );
        assert!(balanced.report.all_awake && chain.report.all_awake);
        let tb = balanced.report.metrics.wakeup_time_units().unwrap();
        let tc = chain.report.metrics.wakeup_time_units().unwrap();
        assert!(
            tc > 4.0 * tb,
            "chain time {tc} should dwarf balanced time {tb} on a star"
        );
        // Same message count: the layout only changes the schedule.
        assert_eq!(balanced.report.messages(), chain.report.messages());
    }

    #[test]
    fn sibling_tree_covers_all_children() {
        let g = generators::star(33).unwrap();
        let net = Network::kt0(g, 3);
        let kids: Vec<NodeId> = (1..33).map(NodeId::new).collect();
        let entries = super::cen_entries(
            &net,
            |v| {
                if v.index() == 0 {
                    None
                } else {
                    Some(NodeId::new(0))
                }
            },
            |v| {
                if v.index() == 0 {
                    kids.as_slice()
                } else {
                    &[]
                }
            },
        );
        // Reconstruct the traversal: starting from the hub's first child,
        // following next-sibling ports must reach all 32 children.
        let hub = NodeId::new(0);
        let mut reached = std::collections::HashSet::new();
        let mut frontier = vec![net
            .ports()
            .neighbor(hub, entries[0].first_child_port.unwrap())];
        while let Some(c) = frontier.pop() {
            assert!(reached.insert(c));
            let (l, r) = entries[c.index()].next_sibling_ports;
            for p in [l, r].into_iter().flatten() {
                frontier.push(net.ports().neighbor(hub, p));
            }
        }
        assert_eq!(reached.len(), 32);
    }
}
