//! The paper's KT0 CONGEST advising schemes (Section 4).
//!
//! Each scheme pairs an oracle (computes per-node advice bits from the whole
//! network) with an asynchronous KT0 protocol that uses the advice to wake
//! the network. [`run_scheme`] executes a scheme end to end and reports the
//! paper's three complexity measures (time, messages, advice length).

pub mod bfs_tree;
pub mod cen;
pub mod fip06;
pub mod omniscient;
pub mod spanner;
pub mod threshold;

use wakeup_sim::adversary::WakeSchedule;
use wakeup_sim::advice::AdviceStats;
use wakeup_sim::{
    AsyncConfig, AsyncEngine, AsyncProtocol, BitStr, ChannelModel, Network, RunReport,
};

/// An advising scheme: an oracle plus the distributed algorithm that
/// consumes its advice.
pub trait AdvisingScheme {
    /// The KT0 protocol run by the nodes.
    type Protocol: AsyncProtocol;

    /// Computes every node's advice from the full network (the oracle sees
    /// topology, IDs, and port mappings, but not the awake set).
    fn advise(&self, net: &Network) -> Vec<BitStr>;

    /// The bandwidth model the scheme is designed for (CONGEST by default,
    /// matching Section 4).
    fn channel(&self, n: usize) -> ChannelModel {
        ChannelModel::congest_for(n)
    }
}

/// Outcome of running an advising scheme.
#[derive(Debug, Clone)]
pub struct SchemeRun {
    /// The execution report.
    pub report: RunReport,
    /// Advice-length statistics (max / avg / total bits).
    pub advice: AdviceStats,
}

/// Runs `scheme` on `net` under `schedule` with the given engine seed.
///
/// # Example
///
/// ```
/// use wakeup_core::advice::{bfs_tree::BfsTreeScheme, run_scheme};
/// use wakeup_graph::{generators, NodeId};
/// use wakeup_sim::{adversary::WakeSchedule, Network};
///
/// let net = Network::kt0(generators::grid(4, 5)?, 3);
/// let run = run_scheme(&BfsTreeScheme::new(), &net, &WakeSchedule::single(NodeId::new(7)), 1);
/// assert!(run.report.all_awake);
/// assert!(run.report.metrics.messages_sent <= 2 * (net.n() as u64 - 1));
/// # Ok::<(), wakeup_graph::GraphError>(())
/// ```
pub fn run_scheme<S: AdvisingScheme>(
    scheme: &S,
    net: &Network,
    schedule: &WakeSchedule,
    seed: u64,
) -> SchemeRun {
    let advice = std::sync::Arc::new(scheme.advise(net));
    run_scheme_with_advice(scheme, net, advice, schedule, seed)
}

/// As [`run_scheme`], but with the oracle's advice supplied by the caller —
/// the entry point for artifact caches that compute advice once and replay
/// it across many trials. The advice must be exactly what
/// [`AdvisingScheme::advise`] returns for this network, or the run measures
/// a different scheme.
pub fn run_scheme_with_advice<S: AdvisingScheme>(
    scheme: &S,
    net: &Network,
    advice: std::sync::Arc<Vec<BitStr>>,
    schedule: &WakeSchedule,
    seed: u64,
) -> SchemeRun {
    let stats = AdviceStats::measure(&advice);
    let config = AsyncConfig {
        channel: scheme.channel(net.n()),
        seed,
        advice: Some(advice),
        ..AsyncConfig::default()
    };
    let report = AsyncEngine::<S::Protocol>::new(net, config).run(schedule);
    SchemeRun {
        report,
        advice: stats,
    }
}

#[doc(inline)]
pub use bfs_tree::BfsTreeScheme;
#[doc(inline)]
pub use cen::CenScheme;
#[doc(inline)]
pub use fip06::Fip06Scheme;
#[doc(inline)]
pub use omniscient::OmniscientScheme;
#[doc(inline)]
pub use spanner::SpannerScheme;
#[doc(inline)]
pub use threshold::ThresholdScheme;
