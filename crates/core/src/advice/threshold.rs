//! Theorem 5(A): O(D) time, O(n^{3/2}) messages, maximum advice
//! O(√n · log n) bits, average advice O(log n) bits.
//!
//! Same BFS tree as Corollary 1, but nodes with more than √n tree neighbors
//! (*high-degree tree nodes*) get a single advice bit and simply broadcast on
//! all their ports when they wake. Since the tree has n−1 edges there are at
//! most O(√n) high-degree tree nodes, so the broadcast overhead is bounded by
//! O(√n · n) = O(n^{3/2}) messages, while no node stores more than √n port
//! numbers.

use wakeup_graph::{algo, NodeId};
use wakeup_sim::{
    AsyncProtocol, BitReader, BitStr, Context, Incoming, Network, NodeInit, Port, WakeCause,
};

use super::bfs_tree::TreeWakeMsg;
use super::AdvisingScheme;

/// The Theorem 5(A) scheme.
#[derive(Debug, Clone, Default)]
pub struct ThresholdScheme {
    root: Option<NodeId>,
}

impl ThresholdScheme {
    /// Scheme rooted at node 0.
    pub fn new() -> ThresholdScheme {
        ThresholdScheme { root: None }
    }

    /// Scheme with an explicit BFS root.
    pub fn rooted_at(root: NodeId) -> ThresholdScheme {
        ThresholdScheme { root: Some(root) }
    }
}

impl AdvisingScheme for ThresholdScheme {
    type Protocol = ThresholdWake;

    fn advise(&self, net: &Network) -> Vec<BitStr> {
        let g = net.graph();
        let threshold = (g.n() as f64).sqrt().ceil() as usize;
        // Default to a graph center: the BFS height is then the radius,
        // halving the worst-case wake-up time vs an arbitrary root.
        let root = self
            .root
            .or_else(|| algo::center(net.graph()).map(|(_, c)| c))
            .unwrap_or(NodeId::new(0));
        let tree = algo::bfs_tree(g, root);
        (0..g.n())
            .map(|vi| {
                let v = NodeId::new(vi);
                let mut s = BitStr::new();
                if tree.tree_degree(v) > threshold {
                    // High-degree tree node: one bit of advice.
                    s.push_bool(true);
                } else {
                    s.push_bool(false);
                    let mut ports: Vec<Port> = Vec::new();
                    if let Some(p) = tree.parent(v) {
                        ports.push(net.ports().port_to(v, p).expect("tree edge"));
                    }
                    for &c in tree.children(v) {
                        ports.push(net.ports().port_to(v, c).expect("tree edge"));
                    }
                    s.push_gamma(ports.len() as u64 + 1);
                    for p in ports {
                        s.push_gamma(p.number() as u64);
                    }
                }
                s
            })
            .collect()
    }
}

/// Protocol: low-degree tree nodes push over their listed ports, high-degree
/// tree nodes broadcast everywhere.
#[derive(Debug)]
pub struct ThresholdWake {
    high_degree: bool,
    tree_ports: Vec<Port>,
    pushed: bool,
}

impl AsyncProtocol for ThresholdWake {
    type Msg = TreeWakeMsg;

    fn init(init: &NodeInit<'_>) -> Self {
        let mut r = BitReader::new(init.advice);
        let high_degree = r.read_bool().unwrap_or(false);
        let mut tree_ports = Vec::new();
        if !high_degree {
            if let Some(count) = r.read_gamma().and_then(|c| c.checked_sub(1)) {
                for _ in 0..count {
                    match r.read_gamma() {
                        Some(p) if p >= 1 && p as usize <= init.degree => {
                            tree_ports.push(Port::new(p as usize));
                        }
                        _ => break,
                    }
                }
            }
        }
        ThresholdWake {
            high_degree,
            tree_ports,
            pushed: false,
        }
    }

    fn on_wake(&mut self, ctx: &mut Context<'_, TreeWakeMsg>, _cause: WakeCause) {
        if self.pushed {
            return;
        }
        self.pushed = true;
        if self.high_degree {
            ctx.broadcast(TreeWakeMsg);
        } else {
            for &p in &self.tree_ports {
                ctx.send(p, TreeWakeMsg);
            }
        }
    }

    fn on_message(&mut self, _: &mut Context<'_, TreeWakeMsg>, _: Incoming, _: TreeWakeMsg) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advice::run_scheme;
    use wakeup_graph::generators;
    use wakeup_sim::adversary::WakeSchedule;
    use wakeup_sim::advice::AdviceStats;

    #[test]
    fn wakes_everyone() {
        for seed in 0..4 {
            let g = generators::erdos_renyi_connected(60, 0.08, seed).unwrap();
            let net = Network::kt0(g, seed);
            let run = run_scheme(
                &ThresholdScheme::new(),
                &net,
                &WakeSchedule::single(NodeId::new(seed as usize)),
                seed,
            );
            assert!(run.report.all_awake, "seed {seed}");
        }
    }

    #[test]
    fn star_hub_is_high_degree() {
        let n = 100usize;
        let g = generators::star(n).unwrap();
        let net = Network::kt0(g, 1);
        let advice = ThresholdScheme::rooted_at(NodeId::new(0)).advise(&net);
        // Hub advice is the single high-degree bit.
        assert_eq!(advice[0].len(), 1);
        let stats = AdviceStats::measure(&advice);
        let max_bound = ((n as f64).sqrt().ceil() as usize + 2)
            * 2
            * (64 - (n as u64).leading_zeros() as usize);
        assert!(
            stats.max_bits <= max_bound,
            "max {} > {max_bound}",
            stats.max_bits
        );
    }

    #[test]
    fn messages_within_three_halves_power() {
        let n = 120usize;
        let g = generators::erdos_renyi_connected(n, 0.2, 9).unwrap();
        let net = Network::kt0(g, 9);
        let run = run_scheme(
            &ThresholdScheme::new(),
            &net,
            &WakeSchedule::single(NodeId::new(0)),
            1,
        );
        assert!(run.report.all_awake);
        let bound = 4.0 * (n as f64).powf(1.5);
        assert!(
            (run.report.metrics.messages_sent as f64) <= bound,
            "messages {} above O(n^1.5) = {bound}",
            run.report.metrics.messages_sent
        );
    }

    #[test]
    fn advice_avg_is_logarithmic() {
        let n = 150usize;
        let g = generators::erdos_renyi_connected(n, 0.1, 4).unwrap();
        let net = Network::kt0(g, 4);
        let advice = ThresholdScheme::new().advise(&net);
        let stats = AdviceStats::measure(&advice);
        assert!(
            stats.avg_bits <= 6.0 * (n as f64).log2(),
            "avg advice {} too large",
            stats.avg_bits
        );
    }

    #[test]
    fn multiple_wake_sources() {
        let g = generators::barbell(10, 5).unwrap();
        let net = Network::kt0(g, 2);
        let awake = [NodeId::new(0), NodeId::new(24)];
        let run = run_scheme(
            &ThresholdScheme::new(),
            &net,
            &WakeSchedule::all_at_zero(&awake),
            3,
        );
        assert!(run.report.all_awake);
    }
}
