//! Theorem 6 / Corollary 2: spanner-based 𝖢𝖤𝖭 advice with awake-distance
//! time — O(k·ρ_awk·log n) time, O(k·n^{1+1/k}·log n) messages, maximum
//! advice O(n^{1/k}·log² n) bits.
//!
//! The BFS-tree schemes pay Θ(D) time even when awake nodes sit next to
//! every sleeper. This scheme instead encodes a greedy (2k−1)-spanner:
//! waking then floods along *spanner* edges, whose stretch bounds the wake
//! time by (2k−1)·ρ_awk hops (up to the 𝖢𝖤𝖭 log-factor per hop).
//!
//! Encoding a general subgraph with 𝖢𝖤𝖭 requires trees, so the oracle
//! decomposes the spanner's edges into rooted forests (the greedy spanner's
//! sparsity keeps the count at O(n^{1/k})) and stores one 𝖢𝖤𝖭 tuple per
//! forest per node: O(n^{1/k} log n) ⊆ O(n^{1/k} log² n) bits. On waking, a
//! node runs the 𝖢𝖤𝖭 routine in every forest simultaneously, waking all its
//! spanner neighbors within O(log n) time.
//!
//! Corollary 2 is the instantiation `k = ⌈log₂ n⌉`: the spanner is then a
//! O(log n)-stretch sparsifier with O(n) edges, giving O(ρ_awk·log² n) time,
//! O(n·log² n) messages, and O(log² n)-bit advice.

use wakeup_graph::algo;
use wakeup_sim::{
    AsyncProtocol, BitReader, BitStr, ChannelModel, Context, Inbox, Incoming, Network, NodeInit,
    Payload, Port, WakeCause,
};

use super::cen::{cen_entries, decode_entry, encode_entry, CenEntry};
use super::AdvisingScheme;

/// 𝖢𝖤𝖭 messages tagged with the forest they belong to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForestMsg {
    /// Index of the forest this message belongs to.
    pub forest: u32,
    /// The 𝖢𝖤𝖭 payload.
    pub kind: ForestMsgKind,
}

/// The 𝖢𝖤𝖭 message kinds (see [`super::cen::CenMsg`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForestMsgKind {
    /// Child → parent wake-up.
    WakeParent,
    /// Parent → child wake-up + echo request.
    WakeChild,
    /// Child → parent: next sibling-tree ports.
    NextSiblings {
        /// Left sibling-tree child port (at the parent).
        left: Option<u32>,
        /// Right sibling-tree child port (at the parent).
        right: Option<u32>,
    },
}

impl Payload for ForestMsg {
    fn size_bits(&self) -> usize {
        let forest_bits = 64 - u64::from(self.forest.max(1)).leading_zeros() as usize;
        let kind_bits = match &self.kind {
            ForestMsgKind::WakeParent | ForestMsgKind::WakeChild => 2,
            ForestMsgKind::NextSiblings { left, right } => {
                let port_bits = |p: &Option<u32>| {
                    1 + p.map_or(0, |x| 64 - u64::from(x).leading_zeros() as usize)
                };
                2 + port_bits(left) + port_bits(right)
            }
        };
        forest_bits + kind_bits
    }
}

/// The Theorem 6 scheme.
#[derive(Debug, Clone)]
pub struct SpannerScheme {
    k: usize,
}

impl SpannerScheme {
    /// Scheme with an explicit stretch parameter `k` (stretch `2k − 1`).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> SpannerScheme {
        assert!(k >= 1, "spanner parameter k must be positive");
        SpannerScheme { k }
    }

    /// Corollary 2's instantiation: `k = ⌈log₂ n⌉`.
    pub fn log_instantiation(n: usize) -> SpannerScheme {
        let k = (n.max(2) as f64).log2().ceil() as usize;
        SpannerScheme::new(k.max(1))
    }

    /// The stretch parameter.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl AdvisingScheme for SpannerScheme {
    type Protocol = SpannerWake;

    fn advise(&self, net: &Network) -> Vec<BitStr> {
        let spanner = algo::greedy_spanner(net.graph(), self.k);
        let forests = algo::forest_decomposition(&spanner);
        let n = net.n();
        // One entry table per forest; node v's advice is its row across all
        // tables, so the strings can be built without a per-node collection.
        let entries_by_forest: Vec<Vec<CenEntry>> = forests
            .iter()
            .map(|forest| cen_entries(net, |v| forest.parent(v), |v| forest.children(v)))
            .collect();
        let mut strings = Vec::with_capacity(n);
        for v in 0..n {
            let mut s = BitStr::new();
            s.push_gamma(entries_by_forest.len() as u64 + 1);
            for table in &entries_by_forest {
                encode_entry(&mut s, &table[v]);
            }
            strings.push(s);
        }
        strings
    }

    fn channel(&self, n: usize) -> ChannelModel {
        ChannelModel::congest_for(n)
    }
}

/// The node-side protocol: a 𝖢𝖤𝖭 wake routine per forest.
///
/// Carries the same defensive bounds as [`super::cen::CenWake`] (one
/// `NextSiblings` echo per forest, one contact per child port per forest),
/// so corrupted advice degrades gracefully instead of looping.
#[derive(Debug)]
pub struct SpannerWake {
    entries: Vec<CenEntry>,
    started: bool,
    replied: Vec<bool>,
    // (forest, port) pairs already contacted — a flat list beats a set per
    // forest here, since honest advice contacts each node O(1) times per
    // forest and the list stays a handful of entries long.
    contacted: Vec<(u32, u32)>,
}

impl SpannerWake {
    fn start(&mut self, ctx: &mut Context<'_, ForestMsg>) {
        if self.started {
            return;
        }
        self.started = true;
        ctx.phase("spanner:start");
        for f in 0..self.entries.len() {
            if let Some(p) = self.entries[f].parent_port {
                if p.number() <= ctx.degree() {
                    ctx.send(
                        p,
                        ForestMsg {
                            forest: f as u32,
                            kind: ForestMsgKind::WakeParent,
                        },
                    );
                }
            }
            if let Some(fc) = self.entries[f].first_child_port {
                self.contact_child(ctx, f, fc.number() as u32);
            }
        }
    }

    fn contact_child(&mut self, ctx: &mut Context<'_, ForestMsg>, forest: usize, port: u32) {
        if port == 0 || port as usize > ctx.degree() {
            return; // corrupted advice: out-of-range port
        }
        let key = (forest as u32, port);
        if !self.contacted.contains(&key) {
            self.contacted.push(key);
            ctx.phase("spanner:probe");
            ctx.send(
                Port::new(port as usize),
                ForestMsg {
                    forest: forest as u32,
                    kind: ForestMsgKind::WakeChild,
                },
            );
        }
    }
}

impl AsyncProtocol for SpannerWake {
    type Msg = ForestMsg;

    fn init(init: &NodeInit<'_>) -> Self {
        let mut r = BitReader::new(init.advice);
        let mut entries = Vec::new();
        if let Some(count) = r.read_gamma().and_then(|c| c.checked_sub(1)) {
            // Bound the entry count by the degree-independent sanity cap of
            // the advice length itself (each entry takes >= 4 bits).
            for _ in 0..count.min(init.advice.len() as u64) {
                match decode_entry(&mut r) {
                    Some(e) => entries.push(e),
                    None => break,
                }
            }
        }
        let forests = entries.len();
        SpannerWake {
            entries,
            started: false,
            replied: vec![false; forests],
            contacted: Vec::new(),
        }
    }

    fn on_wake(&mut self, ctx: &mut Context<'_, ForestMsg>, _cause: WakeCause) {
        self.start(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, ForestMsg>, from: Incoming, msg: ForestMsg) {
        self.start(ctx);
        self.handle(ctx, from, msg);
    }

    fn on_messages_batch(
        &mut self,
        ctx: &mut Context<'_, ForestMsg>,
        inbox: &mut Inbox<'_, ForestMsg>,
    ) {
        // Batched delivery: start once for the whole tick's arrivals, then
        // handle each message in delivery order.
        self.start(ctx);
        while let Some((from, msg)) = inbox.next() {
            self.handle(ctx, from, msg);
        }
    }
}

impl SpannerWake {
    fn handle(&mut self, ctx: &mut Context<'_, ForestMsg>, from: Incoming, msg: ForestMsg) {
        let f = msg.forest as usize;
        let Some(entry) = self.entries.get(f) else {
            return;
        };
        match msg.kind {
            ForestMsgKind::WakeParent => {}
            ForestMsgKind::WakeChild => {
                if self.replied[f] {
                    return; // honest parents contact a child exactly once
                }
                self.replied[f] = true;
                let (l, r) = entry.next_sibling_ports;
                ctx.send(
                    from.port,
                    ForestMsg {
                        forest: msg.forest,
                        kind: ForestMsgKind::NextSiblings {
                            left: l.map(|p| p.number() as u32),
                            right: r.map(|p| p.number() as u32),
                        },
                    },
                );
            }
            ForestMsgKind::NextSiblings { left, right } => {
                for p in [left, right].into_iter().flatten() {
                    self.contact_child(ctx, f, p);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advice::run_scheme;
    use wakeup_graph::{generators, NodeId};
    use wakeup_sim::adversary::WakeSchedule;
    use wakeup_sim::advice::AdviceStats;

    #[test]
    fn wakes_everyone_various_k() {
        let g = generators::erdos_renyi_connected(60, 0.15, 1).unwrap();
        let net = Network::kt0(g, 1);
        for k in [2usize, 3, 4] {
            let run = run_scheme(
                &SpannerScheme::new(k),
                &net,
                &WakeSchedule::single(NodeId::new(0)),
                k as u64,
            );
            assert!(run.report.all_awake, "k = {k}");
        }
    }

    #[test]
    fn log_instantiation_wakes_everyone() {
        let g = generators::erdos_renyi_connected(80, 0.1, 2).unwrap();
        let n = g.n();
        let net = Network::kt0(g, 2);
        let run = run_scheme(
            &SpannerScheme::log_instantiation(n),
            &net,
            &WakeSchedule::single(NodeId::new(11)),
            5,
        );
        assert!(run.report.all_awake);
    }

    #[test]
    fn time_scales_with_awake_distance_not_diameter() {
        // On a long path with awake nodes planted densely, wake-up completes
        // in time ~ ρ_awk · log n, far below the diameter.
        let n = 200usize;
        let g = generators::path(n).unwrap();
        let net = Network::kt0(g, 3);
        let awake: Vec<NodeId> = (0..n).step_by(10).map(NodeId::new).collect();
        let rho = wakeup_graph::algo::awake_distance(net.graph(), &awake).unwrap();
        let run = run_scheme(
            &SpannerScheme::new(3),
            &net,
            &WakeSchedule::all_at_zero(&awake),
            1,
        );
        assert!(run.report.all_awake);
        let t = run.report.metrics.wakeup_time_units().unwrap();
        let diameter = (n - 1) as f64;
        let k = 3.0;
        let bound = 2.0 * k * rho as f64 * (n as f64).ln();
        assert!(t <= bound, "time {t} > bound {bound}");
        assert!(
            t < diameter / 2.0,
            "time {t} should beat diameter {diameter}"
        );
    }

    #[test]
    fn advice_length_scales_with_forest_count() {
        let n = 100usize;
        let g = generators::complete(n).unwrap();
        let net = Network::kt0(g, 4);
        let k = 2usize;
        let advice = SpannerScheme::new(k).advise(&net);
        let stats = AdviceStats::measure(&advice);
        // O(n^{1/k} log^2 n) bits with a generous constant.
        let bound = 8.0 * (n as f64).powf(1.0 / k as f64) * (n as f64).log2().powi(2);
        assert!(
            (stats.max_bits as f64) <= bound,
            "max advice {} > {bound}",
            stats.max_bits
        );
    }

    #[test]
    fn messages_track_spanner_size() {
        let n = 80usize;
        let g = generators::complete(n).unwrap();
        let m = g.m() as u64;
        let net = Network::kt0(g, 5);
        let all: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        let run = run_scheme(
            &SpannerScheme::new(2),
            &net,
            &WakeSchedule::all_at_zero(&all),
            2,
        );
        assert!(run.report.all_awake);
        // Far fewer messages than flooding's 2m on the complete graph.
        assert!(
            run.report.metrics.messages_sent < m,
            "messages {} should be below m = {m}",
            run.report.metrics.messages_sent
        );
    }

    #[test]
    fn congest_compliant() {
        let g = generators::erdos_renyi_connected(60, 0.2, 6).unwrap();
        let net = Network::kt0(g, 6);
        let run = run_scheme(
            &SpannerScheme::new(3),
            &net,
            &WakeSchedule::single(NodeId::new(0)),
            3,
        );
        assert_eq!(run.report.metrics.congest_violations, 0);
        assert!(run.report.all_awake);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_k_rejected() {
        SpannerScheme::new(0);
    }
}
