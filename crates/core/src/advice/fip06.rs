//! The original Fraigniaud–Ilcinkas–Pelc scheme \[FIP06\] — the historical
//! baseline the paper's Corollary 1 sharpens.
//!
//! \[FIP06\] "essentially concatenates every incident tree edge of a spanning
//! tree as advice": an *arbitrary* spanning tree (we use a DFS tree, the
//! least favorable natural choice) and a plain port list per node, with
//! fixed-width port numbers and no bitmap fallback. Compared to Corollary 1
//! this costs
//!
//! * worst-case advice Θ(n log n) bits at a hub (vs O(n) with the bitmap),
//! * wake-up time up to Θ(n) along the DFS tree (vs O(D) with a BFS tree
//!   rooted at a center).
//!
//! Both regressions are measured in this module's tests — the executable
//! version of the paper's "it is easy to see that their approach takes O(D)
//! time when instructing the oracle to use a BFS tree instead" remark and of
//! Appendix B's log-factor shave.

use wakeup_graph::{algo, NodeId};
use wakeup_sim::bits::width_for;
use wakeup_sim::{BitReader, BitStr, Network, Port};

use super::bfs_tree::TreeWake;
use super::AdvisingScheme;

/// The original \[FIP06\] scheme: DFS spanning tree, fixed-width port lists.
#[derive(Debug, Clone, Default)]
pub struct Fip06Scheme {
    root: Option<NodeId>,
}

impl Fip06Scheme {
    /// Scheme rooted at node 0 (the original uses an arbitrary tree; the
    /// root choice is part of the arbitrariness).
    pub fn new() -> Fip06Scheme {
        Fip06Scheme { root: None }
    }

    /// Scheme with an explicit DFS root.
    pub fn rooted_at(root: NodeId) -> Fip06Scheme {
        Fip06Scheme { root: Some(root) }
    }
}

impl AdvisingScheme for Fip06Scheme {
    type Protocol = TreeWake;

    fn advise(&self, net: &Network) -> Vec<BitStr> {
        let g = net.graph();
        let root = self.root.unwrap_or(NodeId::new(0));
        // DFS spanning tree.
        let visits = algo::dfs_preorder(g, root);
        let mut tree_ports: Vec<Vec<Port>> = vec![Vec::new(); g.n()];
        for v in &visits {
            if let Some(parent) = v.discovered_from {
                tree_ports[v.node.index()]
                    .push(net.ports().port_to(v.node, parent).expect("tree edge"));
                tree_ports[parent.index()]
                    .push(net.ports().port_to(parent, v.node).expect("tree edge"));
            }
        }
        // Plain concatenation: count (fixed width) + fixed-width ports.
        (0..g.n())
            .map(|vi| {
                let v = NodeId::new(vi);
                let deg = g.degree(v) as u64;
                let width = width_for(deg + 1);
                let mut s = BitStr::new();
                s.push_bits(width as u64, 8);
                s.push_bits(tree_ports[vi].len() as u64, width.max(1));
                for p in &tree_ports[vi] {
                    s.push_bits(p.number() as u64, width.max(1));
                }
                s
            })
            .collect()
    }
}

/// Decodes an \[FIP06\] advice string back into ports (used by tests; the
/// wire protocol is [`TreeWake`]'s, which expects the Corollary 1 encoding —
/// so the scheme re-encodes below).
pub(crate) fn decode_fip06(advice: &BitStr) -> Option<Vec<Port>> {
    let mut r = BitReader::new(advice);
    let width = r.read_bits(8)? as usize;
    let count = r.read_bits(width.max(1))? as usize;
    let mut ports = Vec::with_capacity(count);
    for _ in 0..count {
        let p = r.read_bits(width.max(1))?;
        if p == 0 {
            return None;
        }
        ports.push(Port::new(p as usize));
    }
    Some(ports)
}

// TreeWake decodes the Corollary 1 format, so Fip06Scheme has to produce it;
// the simplest faithful accounting is to measure the FIP06 bits but ship the
// decodable form. To keep the measured advice honest, the scheme's `advise`
// above returns the *FIP06 encoding*, and this impl converts it at the
// engine boundary.
impl Fip06Scheme {
    /// Re-encodes FIP06 advice into the [`TreeWake`] wire format (same port
    /// set, Corollary 1 encoding) — used by [`run_fip06`] so the protocol
    /// can parse while the measured lengths stay FIP06's.
    pub fn to_tree_wake_advice(advice: &[BitStr], degrees: &[usize]) -> Vec<BitStr> {
        advice
            .iter()
            .zip(degrees)
            .map(|(s, &deg)| {
                let ports = decode_fip06(s).unwrap_or_default();
                super::bfs_tree::encode_ports(&ports, deg)
            })
            .collect()
    }
}

/// Runs the FIP06 scheme end to end, reporting the *FIP06* advice lengths.
pub fn run_fip06(
    scheme: &Fip06Scheme,
    net: &Network,
    schedule: &wakeup_sim::adversary::WakeSchedule,
    seed: u64,
) -> super::SchemeRun {
    use wakeup_sim::advice::AdviceStats;
    use wakeup_sim::{AsyncConfig, AsyncEngine};
    let fip_advice = scheme.advise(net);
    let stats = AdviceStats::measure(&fip_advice);
    let degrees: Vec<usize> = net.graph().nodes().map(|v| net.graph().degree(v)).collect();
    let wire = Fip06Scheme::to_tree_wake_advice(&fip_advice, &degrees);
    let config = AsyncConfig {
        channel: scheme.channel(net.n()),
        seed,
        advice: Some(std::sync::Arc::new(wire)),
        ..AsyncConfig::default()
    };
    let report = AsyncEngine::<TreeWake>::new(net, config).run(schedule);
    super::SchemeRun {
        report,
        advice: stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advice::{run_scheme, BfsTreeScheme};
    use wakeup_graph::generators;
    use wakeup_sim::adversary::WakeSchedule;

    #[test]
    fn wakes_everyone_with_tree_messages() {
        for seed in 0..3 {
            let g = generators::erdos_renyi_connected(50, 0.1, seed).unwrap();
            let n = g.n() as u64;
            let net = Network::kt0(g, seed);
            let run = run_fip06(
                &Fip06Scheme::new(),
                &net,
                &WakeSchedule::single(NodeId::new(1)),
                seed,
            );
            assert!(run.report.all_awake, "seed {seed}");
            assert!(run.report.messages() <= 2 * (n - 1));
        }
    }

    #[test]
    fn cor1_shaves_the_log_factor_on_hubs() {
        // On a star, FIP06 stores ~n fixed-width ports at the hub: Θ(n log n)
        // bits; Corollary 1's bitmap stores n-1 bits.
        let n = 256usize;
        let g = generators::star(n).unwrap();
        let net = Network::kt0(g, 1);
        let schedule = WakeSchedule::single(NodeId::new(0));
        let fip = run_fip06(&Fip06Scheme::rooted_at(NodeId::new(0)), &net, &schedule, 2);
        let cor1 = run_scheme(
            &BfsTreeScheme::rooted_at(NodeId::new(0)),
            &net,
            &schedule,
            2,
        );
        assert!(fip.report.all_awake && cor1.report.all_awake);
        assert!(
            fip.advice.max_bits as f64 >= 4.0 * cor1.advice.max_bits as f64,
            "FIP06 max {} should dwarf Cor 1 max {}",
            fip.advice.max_bits,
            cor1.advice.max_bits
        );
    }

    #[test]
    fn dfs_tree_costs_time_on_cycles() {
        // A DFS tree of a cycle is a Hamiltonian path: waking at the root,
        // the signal must crawl all ~n hops to the far end. Cor 1's BFS tree
        // from the same root uses both arcs: ~n/2. (Either tree has a bad
        // awake placement — the point of the paper's remark is that a BFS
        // tree bounds the height by D, which an arbitrary tree does not.)
        let n = 100usize;
        let g = generators::cycle(n).unwrap();
        let net = Network::kt0(g, 3);
        let schedule = WakeSchedule::single(NodeId::new(0));
        let fip = run_fip06(&Fip06Scheme::rooted_at(NodeId::new(0)), &net, &schedule, 3);
        let cor1 = run_scheme(
            &BfsTreeScheme::rooted_at(NodeId::new(0)),
            &net,
            &schedule,
            3,
        );
        let t_fip = fip.report.metrics.wakeup_time_units().unwrap();
        let t_cor1 = cor1.report.metrics.wakeup_time_units().unwrap();
        assert_eq!(t_fip, (n - 1) as f64, "Hamiltonian-path crawl");
        assert_eq!(t_cor1, (n / 2) as f64, "both arcs in parallel");
    }

    #[test]
    fn fip06_codec_roundtrip() {
        let g = generators::grid(4, 4).unwrap();
        let net = Network::kt0(g, 4);
        let advice = Fip06Scheme::new().advise(&net);
        for (vi, s) in advice.iter().enumerate() {
            let ports = decode_fip06(s).expect("well-formed");
            let deg = net.graph().degree(NodeId::new(vi));
            assert!(ports.iter().all(|p| p.number() <= deg));
            assert!(!ports.is_empty(), "every node touches the spanning tree");
        }
    }
}
