//! Corollary 1 (\[FIP06\] with a BFS tree and bit-tight encodings): O(D) time,
//! O(n) messages, maximum advice O(n) bits, average advice O(log n) bits.
//!
//! The oracle roots a BFS tree and tells every node which of its ports are
//! tree edges. Each node, upon waking, pushes a one-bit wake-up signal over
//! exactly its tree ports; every tree edge carries at most two messages, so
//! the message complexity is at most `2(n−1)`, and propagation along the BFS
//! tree keeps the time at `O(D)`.
//!
//! The advice encoding is chosen per node to be the cheaper of
//!
//! * a **port list** (Elias-gamma coded; ~`deg_T(v) · log deg(v)` bits), or
//! * a **port bitmap** (`deg(v)` bits),
//!
//! which yields the Corollary 1 trade-off: the maximum stays `O(n)` while the
//! average is `O(log n)` (the total list length is `O(n log n)`).

use wakeup_graph::{algo, NodeId};
use wakeup_sim::{
    AsyncProtocol, BitReader, BitStr, Context, Incoming, Network, NodeInit, Payload, Port,
    WakeCause,
};

use super::AdvisingScheme;

/// The one-bit wake-up signal used by all tree schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeWakeMsg;

impl Payload for TreeWakeMsg {
    fn size_bits(&self) -> usize {
        1
    }
}

/// Encodes a set of tree ports at a node of the given degree, choosing the
/// cheaper of list and bitmap representations.
pub(crate) fn encode_ports(ports: &[Port], degree: usize) -> BitStr {
    let mut list = BitStr::new();
    list.push_bool(false); // tag: list
    list.push_gamma(ports.len() as u64 + 1);
    for p in ports {
        list.push_gamma(p.number() as u64);
    }
    let mut bitmap = BitStr::new();
    bitmap.push_bool(true); // tag: bitmap
    let mut member = vec![false; degree];
    for p in ports {
        member[p.index()] = true;
    }
    for b in member {
        bitmap.push_bool(b);
    }
    if list.len() <= bitmap.len() {
        list
    } else {
        bitmap
    }
}

/// Decodes a port set written by [`encode_ports`].
///
/// Returns `None` on malformed advice.
pub(crate) fn decode_ports(advice: &BitStr, degree: usize) -> Option<Vec<Port>> {
    let mut r = BitReader::new(advice);
    if r.read_bool()? {
        // Bitmap.
        let mut ports = Vec::new();
        for i in 0..degree {
            if r.read_bool()? {
                ports.push(Port::new(i + 1));
            }
        }
        Some(ports)
    } else {
        let count = r.read_gamma()?.checked_sub(1)? as usize;
        let mut ports = Vec::with_capacity(count);
        for _ in 0..count {
            let p = r.read_gamma()? as usize;
            if p == 0 || p > degree {
                return None;
            }
            ports.push(Port::new(p));
        }
        Some(ports)
    }
}

/// The Corollary 1 scheme.
#[derive(Debug, Clone, Default)]
pub struct BfsTreeScheme {
    root: Option<NodeId>,
}

impl BfsTreeScheme {
    /// Scheme rooted at node 0 (any root works; a BFS root minimizes time).
    pub fn new() -> BfsTreeScheme {
        BfsTreeScheme { root: None }
    }

    /// Scheme with an explicit BFS root.
    pub fn rooted_at(root: NodeId) -> BfsTreeScheme {
        BfsTreeScheme { root: Some(root) }
    }
}

impl AdvisingScheme for BfsTreeScheme {
    type Protocol = TreeWake;

    fn advise(&self, net: &Network) -> Vec<BitStr> {
        let g = net.graph();
        // Default to a graph center: the BFS height is then the radius,
        // halving the worst-case wake-up time vs an arbitrary root.
        let root = self
            .root
            .or_else(|| algo::center(net.graph()).map(|(_, c)| c))
            .unwrap_or(NodeId::new(0));
        let tree = algo::bfs_tree(g, root);
        (0..g.n())
            .map(|vi| {
                let v = NodeId::new(vi);
                let mut ports: Vec<Port> = Vec::new();
                if let Some(p) = tree.parent(v) {
                    ports.push(net.ports().port_to(v, p).expect("tree edges exist"));
                }
                for &c in tree.children(v) {
                    ports.push(net.ports().port_to(v, c).expect("tree edges exist"));
                }
                encode_ports(&ports, g.degree(v))
            })
            .collect()
    }
}

/// Protocol: on waking, push the wake signal over every advised tree port.
#[derive(Debug)]
pub struct TreeWake {
    tree_ports: Vec<Port>,
    pushed: bool,
}

impl AsyncProtocol for TreeWake {
    type Msg = TreeWakeMsg;

    fn init(init: &NodeInit<'_>) -> Self {
        let tree_ports = decode_ports(init.advice, init.degree).unwrap_or_default();
        TreeWake {
            tree_ports,
            pushed: false,
        }
    }

    fn on_wake(&mut self, ctx: &mut Context<'_, TreeWakeMsg>, _cause: WakeCause) {
        if !self.pushed {
            self.pushed = true;
            for &p in &self.tree_ports {
                ctx.send(p, TreeWakeMsg);
            }
        }
    }

    fn on_message(&mut self, _: &mut Context<'_, TreeWakeMsg>, _: Incoming, _: TreeWakeMsg) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advice::run_scheme;
    use wakeup_graph::generators;
    use wakeup_sim::adversary::WakeSchedule;
    use wakeup_sim::advice::AdviceStats;

    #[test]
    fn port_codec_roundtrip() {
        for degree in [1usize, 3, 10, 100] {
            let ports: Vec<Port> = (1..=degree).step_by(3).map(Port::new).collect();
            let enc = encode_ports(&ports, degree);
            assert_eq!(decode_ports(&enc, degree).unwrap(), ports);
        }
        // Empty set.
        let enc = encode_ports(&[], 5);
        assert_eq!(decode_ports(&enc, 5).unwrap(), Vec::<Port>::new());
    }

    #[test]
    fn codec_picks_bitmap_for_dense_sets() {
        let degree = 64;
        let all: Vec<Port> = (1..=degree).map(Port::new).collect();
        let enc = encode_ports(&all, degree);
        assert!(enc.len() <= degree + 1, "dense sets should use the bitmap");
        assert_eq!(decode_ports(&enc, degree).unwrap().len(), degree);
    }

    #[test]
    fn wakes_everyone_with_tree_messages() {
        for seed in 0..4 {
            let g = generators::erdos_renyi_connected(50, 0.1, seed).unwrap();
            let n = g.n() as u64;
            let net = Network::kt0(g, seed);
            let run = run_scheme(
                &BfsTreeScheme::new(),
                &net,
                &WakeSchedule::single(NodeId::new((seed as usize * 7) % 50)),
                seed,
            );
            assert!(run.report.all_awake);
            assert!(run.report.metrics.messages_sent <= 2 * (n - 1));
        }
    }

    #[test]
    fn arbitrary_awake_sets_work() {
        let g = generators::grid(5, 5).unwrap();
        let net = Network::kt0(g, 5);
        let awake: Vec<NodeId> = (0..25).step_by(6).map(NodeId::new).collect();
        let run = run_scheme(
            &BfsTreeScheme::new(),
            &net,
            &WakeSchedule::all_at_zero(&awake),
            2,
        );
        assert!(run.report.all_awake);
    }

    #[test]
    fn advice_lengths_match_corollary1() {
        // Max O(n) bits, average O(log n) bits.
        let n = 200usize;
        let g = generators::star(n).unwrap(); // worst case: hub has n-1 tree edges
        let net = Network::kt0(g, 1);
        let advice = BfsTreeScheme::rooted_at(NodeId::new(0)).advise(&net);
        let stats = AdviceStats::measure(&advice);
        assert!(
            stats.max_bits <= n + 2,
            "max {} should be <= n + O(1)",
            stats.max_bits
        );
        let avg_bound = 4.0 * (n as f64).log2();
        assert!(
            stats.avg_bits <= avg_bound,
            "avg {} > {avg_bound}",
            stats.avg_bits
        );
    }

    #[test]
    fn time_is_within_twice_tree_height() {
        let g = generators::path(30).unwrap();
        let net = Network::kt0(g, 3);
        let run = run_scheme(
            &BfsTreeScheme::rooted_at(NodeId::new(0)),
            &net,
            &WakeSchedule::single(NodeId::new(29)),
            4,
        );
        assert!(run.report.all_awake);
        // Wake-up travels from one end of the path to the other: 29 hops.
        assert!(run.report.metrics.wakeup_time_units().unwrap() <= 29.0 + 1e-9);
    }

    #[test]
    fn congest_budget_respected() {
        // run_scheme enforces CONGEST; a panic here would fail the test.
        let g = generators::complete(40).unwrap();
        let net = Network::kt0(g, 6);
        let run = run_scheme(
            &BfsTreeScheme::new(),
            &net,
            &WakeSchedule::single(NodeId::new(1)),
            1,
        );
        assert!(run.report.all_awake);
        assert_eq!(run.report.metrics.congest_violations, 0);
    }
}
