//! Theorem 3: asynchronous KT1 LOCAL wake-up via random-rank DFS tokens.
//!
//! Every node woken *by the adversary* draws a random rank from `[n^c]` and
//! launches a depth-first traversal token carrying its rank, its ID, and the
//! full list of IDs visited so far (legal in the LOCAL model). A node keeps
//! the largest `(rank, id)` pair it has seen and discards tokens that compare
//! strictly smaller. The token with the globally maximum pair is never
//! discarded, so it completes a DFS of the whole network, waking everyone:
//! the algorithm is Las Vegas. With high probability both time and message
//! complexity are `O(n log n)` (the adversary must wake geometrically growing
//! node sets to keep beating the current maximum rank — Section 3.1).

use wakeup_graph::rng::Xoshiro256;
use wakeup_sim::{AsyncProtocol, Context, Incoming, NodeInit, Payload, WakeCause};

/// A DFS traversal token (unbounded size — LOCAL model).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfsToken {
    /// The random rank drawn by the originating node.
    pub rank: u64,
    /// ID of the originating node (lexicographic tiebreak).
    pub origin: u64,
    /// IDs visited so far, in first-visit order.
    pub visited: Vec<u64>,
    /// The current DFS stack; the last entry is the token's holder.
    pub path: Vec<u64>,
    /// O(1)-membership mirror of `visited`, maintained at the two append
    /// sites. Purely derived data riding along for simulation speed: it is
    /// *not* part of the wire format and contributes nothing to
    /// [`Payload::size_bits`] (a receiver could rebuild it from `visited`).
    visited_set: IdSet,
}

impl DfsToken {
    /// A fresh token launched by `origin` (which is its own first visit).
    fn launch(rank: u64, origin: u64) -> DfsToken {
        let mut token = DfsToken {
            rank,
            origin,
            visited: Vec::new(),
            path: vec![origin],
            visited_set: IdSet::default(),
        };
        token.record_visit(origin);
        token
    }

    /// Appends `id` to the visited list, keeping the membership mirror in
    /// sync (the only way `visited` ever grows).
    fn record_visit(&mut self, id: u64) {
        self.visited.push(id);
        self.visited_set.insert(id);
    }

    /// Whether `id` is in the visited list.
    fn has_visited(&self, id: u64) -> bool {
        self.visited_set.contains(id)
    }
}

impl Payload for DfsToken {
    fn size_bits(&self) -> usize {
        // rank + origin + two length-prefixed id lists. The membership
        // mirror is redundant with `visited` and therefore free.
        64 * (2 + self.visited.len() + self.path.len()) + 2 * 32
    }
}

/// A grow-on-demand bitset over node IDs. IDs are drawn from a range of
/// size polynomial in `n` (see `docs/MODEL.md`), so indexing words by
/// `id / 64` stays linear in the network size.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct IdSet {
    words: Vec<u64>,
}

impl IdSet {
    fn insert(&mut self, id: u64) {
        let w = (id / 64) as usize;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1 << (id % 64);
    }

    fn contains(&self, id: u64) -> bool {
        self.words
            .get((id / 64) as usize)
            .is_some_and(|&word| word >> (id % 64) & 1 == 1)
    }
}

/// The Theorem 3 protocol. Requires a KT1 network.
///
/// # Hot-path membership tracking
///
/// The naive implementation scans `token.visited` once per neighbor per
/// arrival (O(deg · n) per hop, O(n²·deg) per traversal). The token instead
/// carries an O(1)-membership mirror of its visited list ([`IdSet`],
/// maintained at the two append sites), and each node keeps a cursor to the
/// first possibly-unvisited neighbor in ascending-ID order for the one token
/// key it is tracking. Because each `(rank, origin)` key names a *single
/// physical token* whose visited list only ever grows, the cursor only moves
/// forward, so the total per-node work for a key is O(deg) — no node ever
/// rescans the visited list. The selected neighbor — first unvisited in
/// ascending ID order — is identical to the naive scan's, so message
/// sequences are byte-for-byte unchanged.
#[derive(Debug)]
pub struct DfsRank {
    id: u64,
    neighbors: Vec<u64>,
    rng: Xoshiro256,
    rank_bound: u64,
    /// Ablation switch: derive the rank from the node ID instead of drawing
    /// it at random (see [`DfsIdRank`]).
    deterministic_ranks: bool,
    /// Largest (rank, id) seen; tokens strictly below this are discarded.
    best: Option<(u64, u64)>,
    /// Key of the token the cursor below describes.
    scratch_key: Option<(u64, u64)>,
    /// First neighbor index not yet known to be visited by the tracked
    /// token.
    cursor: usize,
    /// Diagnostics: number of distinct tokens this node forwarded.
    pub tokens_forwarded: u64,
}

/// Ablation variant of [`DfsRank`] with ranks equal to node IDs.
///
/// Random ranks are what defeats the adaptive wake schedule in Theorem 3's
/// analysis: with deterministic ranks an (ID-aware) adversary can wake nodes
/// in increasing rank order, displacing the leading token every time and
/// driving the message complexity toward Θ(n²). The `ablation_ranks` bench
/// measures the gap.
#[derive(Debug)]
pub struct DfsIdRank {
    inner: DfsRank,
}

impl AsyncProtocol for DfsIdRank {
    type Msg = DfsToken;

    fn init(init: &NodeInit<'_>) -> Self {
        let mut inner = DfsRank::init(init);
        inner.deterministic_ranks = true;
        DfsIdRank { inner }
    }

    fn reinit(&mut self, init: &NodeInit<'_>) {
        self.inner.reinit(init);
        self.inner.deterministic_ranks = true;
    }

    fn on_wake(&mut self, ctx: &mut Context<'_, DfsToken>, cause: WakeCause) {
        self.inner.on_wake(ctx, cause);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, DfsToken>, from: Incoming, msg: DfsToken) {
        self.inner.on_message(ctx, from, msg);
    }
}

impl DfsRank {
    /// Points the cursor at `key`, resetting it if it currently describes a
    /// different token. A mismatch implies this node has never processed
    /// `key`'s token (visited entries are appended only by the node they
    /// name, and any previously-tracked key below `key` can never pass the
    /// `best` filter again), so a reset cursor is accurate.
    fn track(&mut self, key: (u64, u64)) {
        if self.scratch_key != Some(key) {
            self.scratch_key = Some(key);
            self.cursor = 0;
        }
    }

    /// Continues the DFS from this node, which must be the top of the
    /// token's path. Callers must have `track`ed the token's key.
    fn advance(&mut self, ctx: &mut Context<'_, DfsToken>, mut token: DfsToken) {
        debug_assert_eq!(token.path.last(), Some(&self.id));
        debug_assert_eq!(self.scratch_key, Some((token.rank, token.origin)));
        // Next unvisited neighbor in ascending ID order (deterministic) —
        // the cursor only moves forward because visited only grows.
        while self.cursor < self.neighbors.len() && token.has_visited(self.neighbors[self.cursor]) {
            self.cursor += 1;
        }
        debug_assert_eq!(
            self.neighbors.get(self.cursor).copied(),
            self.neighbors
                .iter()
                .copied()
                .find(|w| !token.visited.contains(w)),
            "cursor must agree with a direct visited scan"
        );
        match self.neighbors.get(self.cursor) {
            Some(&w) => {
                ctx.phase("dfs:descend");
                self.tokens_forwarded += 1;
                ctx.send_to_id(w, token);
            }
            None => {
                // Backtrack: pop self; forward to the DFS parent if any.
                token.path.pop();
                if let Some(&parent) = token.path.last() {
                    ctx.phase("dfs:backtrack");
                    self.tokens_forwarded += 1;
                    ctx.send_to_id(parent, token);
                }
                // An empty path means the traversal is complete.
            }
        }
    }
}

impl AsyncProtocol for DfsRank {
    type Msg = DfsToken;

    fn init(init: &NodeInit<'_>) -> Self {
        let n = init.n_hint.max(2) as u64;
        let neighbors = init
            .neighbor_ids
            .expect("DfsRank requires the KT1 knowledge mode")
            .to_vec();
        DfsRank {
            id: init.id,
            neighbors,
            rng: Xoshiro256::seed_from(init.private_seed),
            // The paper's [n^c] rank range with c = 3: collisions happen with
            // probability <= n^2 / n^3 = 1/n.
            rank_bound: n.saturating_mul(n).saturating_mul(n),
            deterministic_ranks: false,
            best: None,
            scratch_key: None,
            cursor: 0,
            tokens_forwarded: 0,
        }
    }

    fn reinit(&mut self, init: &NodeInit<'_>) {
        debug_assert_eq!(self.id, init.id, "reinit must target the same node");
        self.rng = Xoshiro256::seed_from(init.private_seed);
        self.best = None;
        self.scratch_key = None;
        self.cursor = 0;
        self.tokens_forwarded = 0;
    }

    fn on_wake(&mut self, ctx: &mut Context<'_, DfsToken>, cause: WakeCause) {
        // Nodes woken by a message neither draw a rank nor launch a token.
        if cause != WakeCause::Adversary {
            return;
        }
        let rank = if self.deterministic_ranks {
            self.id + 1
        } else {
            1 + self.rng.next_below(self.rank_bound)
        };
        ctx.phase("dfs:launch");
        self.best = Some((rank, self.id));
        let token = DfsToken::launch(rank, self.id);
        self.track((rank, self.id));
        self.advance(ctx, token);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, DfsToken>, _from: Incoming, mut msg: DfsToken) {
        let key = (msg.rank, msg.origin);
        if let Some(best) = self.best {
            if key < best {
                return; // case (b): discard
            }
        }
        self.best = Some(key);
        self.track(key);
        if !msg.has_visited(self.id) {
            // First visit: join the traversal.
            msg.record_visit(self.id);
            msg.path.push(self.id);
        }
        debug_assert_eq!(
            msg.path.last(),
            Some(&self.id),
            "a token always arrives at the top of its own path"
        );
        self.advance(ctx, msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wakeup_graph::{generators, NodeId};
    use wakeup_sim::adversary::{AdversarialDelay, RandomDelay, WakeSchedule};
    use wakeup_sim::{AsyncConfig, AsyncEngine, Network};

    fn run(net: &Network, schedule: &WakeSchedule, seed: u64) -> wakeup_sim::RunReport {
        let config = AsyncConfig {
            seed,
            ..AsyncConfig::default()
        };
        AsyncEngine::<DfsRank>::new(net, config).run(schedule)
    }

    #[test]
    fn single_source_uses_dfs_tree_messages() {
        let g = generators::erdos_renyi_connected(40, 0.2, 1).unwrap();
        let net = Network::kt1(g, 1);
        let report = run(&net, &WakeSchedule::single(NodeId::new(0)), 9);
        assert!(report.all_awake);
        // A single token traverses a DFS tree, crossing each tree edge at
        // most twice: <= 2(n-1) messages.
        assert!(
            report.metrics.messages_sent <= 2 * (net.n() as u64 - 1),
            "messages = {}",
            report.metrics.messages_sent
        );
    }

    #[test]
    fn las_vegas_on_many_seeds_and_schedules() {
        let g = generators::erdos_renyi_connected(30, 0.15, 2).unwrap();
        let nodes: Vec<NodeId> = (0..30).step_by(3).map(NodeId::new).collect();
        let net = Network::kt1(g, 2);
        for seed in 0..8 {
            let report = run(&net, &WakeSchedule::all_at_zero(&nodes), seed);
            assert!(report.all_awake, "seed {seed}");
        }
    }

    #[test]
    fn all_awake_under_adversarial_delays() {
        let g = generators::cycle(25).unwrap();
        let net = Network::kt1(g, 3);
        let schedule = WakeSchedule::all_at_zero(&[NodeId::new(0), NodeId::new(12)]);
        let mut delays = AdversarialDelay::new(77);
        let config = AsyncConfig::default();
        let report = AsyncEngine::<DfsRank>::new(&net, config).run_with(&schedule, &mut delays);
        assert!(report.all_awake);
    }

    #[test]
    fn staggered_adversary_keeps_messages_near_n_log_n() {
        // The adversary wakes a new node every 2n time units — the schedule
        // the Theorem 3 analysis is about. Messages should stay well below
        // the naive n per token x n tokens = n^2.
        let n = 60usize;
        let g = generators::erdos_renyi_connected(n, 0.1, 4).unwrap();
        let net = Network::kt1(g, 4);
        let nodes: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        let schedule = WakeSchedule::staggered(&nodes, 2.0 * n as f64);
        let mut worst = 0u64;
        for seed in 0..5 {
            let report = run(&net, &schedule, seed);
            assert!(report.all_awake);
            worst = worst.max(report.metrics.messages_sent);
        }
        let bound = (10.0 * n as f64 * (n as f64).ln()) as u64;
        assert!(
            worst <= bound,
            "messages {worst} above O(n ln n) envelope {bound}"
        );
    }

    #[test]
    fn all_at_zero_messages_bounded() {
        let n = 50usize;
        let g = generators::erdos_renyi_connected(n, 0.15, 5).unwrap();
        let net = Network::kt1(g, 5);
        let all: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        let mut delays = RandomDelay::new(3);
        let report = AsyncEngine::<DfsRank>::new(&net, AsyncConfig::default())
            .run_with(&WakeSchedule::all_at_zero(&all), &mut delays);
        assert!(report.all_awake);
        let bound = (12.0 * n as f64 * (n as f64).ln()) as u64;
        assert!(
            report.metrics.messages_sent <= bound,
            "messages {} above {bound}",
            report.metrics.messages_sent
        );
    }

    #[test]
    fn deterministic_given_seeds() {
        let g = generators::erdos_renyi_connected(25, 0.2, 6).unwrap();
        let net = Network::kt1(g, 6);
        let schedule = WakeSchedule::all_at_zero(&[NodeId::new(1), NodeId::new(7)]);
        let a = run(&net, &schedule, 42).metrics.messages_sent;
        let b = run(&net, &schedule, 42).metrics.messages_sent;
        assert_eq!(a, b);
    }

    #[test]
    fn works_on_trees_and_stars() {
        for g in [
            generators::star(30).unwrap(),
            generators::random_tree(30, 8).unwrap(),
        ] {
            let net = Network::kt1(g, 7);
            let report = run(&net, &WakeSchedule::single(NodeId::new(5)), 11);
            assert!(report.all_awake);
        }
    }

    #[test]
    #[should_panic(expected = "KT1")]
    fn requires_kt1() {
        let net = Network::kt0(generators::path(4).unwrap(), 0);
        let _ = run(&net, &WakeSchedule::single(NodeId::new(0)), 0);
    }

    #[test]
    fn id_ranks_lose_to_random_ranks_under_ordered_wakes() {
        // An adversary waking nodes in increasing ID order displaces the
        // leading token every time under deterministic ranks; random ranks
        // shrug it off (Theorem 3's whole point).
        let n = 60usize;
        let g = generators::erdos_renyi_connected(n, 0.1, 21).unwrap();
        // Identity IDs so "ordered by id" is meaningful from the outside.
        let net = Network::with_parts(
            g.clone(),
            wakeup_sim::PortAssignment::canonical(&g),
            wakeup_sim::IdAssignment::identity(n),
            wakeup_sim::KnowledgeMode::Kt1,
        );
        let nodes: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        // A short gap keeps tokens overlapping: each ordered wake displaces
        // the deterministic-rank leader mid-traversal.
        let schedule = WakeSchedule::staggered(&nodes, 2.0);
        let config = AsyncConfig {
            seed: 5,
            ..AsyncConfig::default()
        };
        let det = AsyncEngine::<super::DfsIdRank>::new(&net, config.clone()).run(&schedule);
        let rnd = AsyncEngine::<DfsRank>::new(&net, config).run(&schedule);
        assert!(det.all_awake && rnd.all_awake);
        assert!(
            det.metrics.messages_sent > 2 * rnd.metrics.messages_sent,
            "deterministic ranks {} should cost far more than random {}",
            det.metrics.messages_sent,
            rnd.metrics.messages_sent
        );
    }

    #[test]
    fn token_sizes_reported_honestly() {
        let mut t = DfsToken::launch(1, 1);
        t.record_visit(2);
        t.record_visit(3);
        // visited = [1, 2, 3], path = [1]: the membership mirror is free.
        assert_eq!(t.size_bits(), 64 * 6 + 64);
    }
}
