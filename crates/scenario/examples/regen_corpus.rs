//! Regenerates the checked-in `scenarios/` corpus in canonical form.
//!
//! ```text
//! cargo run -p wakeup-scenario --example regen_corpus [DIR]
//! ```
//!
//! The constructed specs here are the corpus's source of truth: every file
//! is written as [`ScenarioSpec::to_canonical_json`] bytes, so a fresh run
//! over an up-to-date checkout is a no-op (the `scenarios` integration
//! tests pin byte-stability). Run it after a schema change, then review the
//! diff.

use std::path::{Path, PathBuf};

use wakeup_scenario::{
    DelaySpec, EngineSpec, GraphSpec, ObsWindowSpec, ProtocolSpec, ReportSpec, ScenarioSpec,
    WakeSpec,
};

const SWEEP: &[usize] = &[64, 128, 256, 512];

fn engine(seed: u64) -> EngineSpec {
    EngineSpec {
        seed,
        shards: 1,
        audit: true,
    }
}

/// One Table 1 row: the spec's own graph is the smallest sweep cell (what
/// `run_spec`-based tests execute); `report.sizes` drives the full sweep in
/// the `table1` and `experiments` binaries.
#[allow(clippy::too_many_arguments)]
fn table1_row(
    name: &str,
    graph: GraphSpec,
    protocol: ProtocolSpec,
    wake: WakeSpec,
    label: &str,
    claim: &str,
    experiments_title: &str,
    experiments_claim: &str,
    sizes: &[usize],
) -> ScenarioSpec {
    ScenarioSpec {
        name: name.to_string(),
        graph,
        protocol,
        wake,
        delays: DelaySpec::Unit,
        engine: engine(7),
        report: Some(ReportSpec {
            label: label.to_string(),
            claim: claim.to_string(),
            experiments_title: experiments_title.to_string(),
            experiments_claim: experiments_claim.to_string(),
            sizes: sizes.to_vec(),
            obs: None,
        }),
    }
}

fn table1() -> Vec<(&'static str, ScenarioSpec)> {
    let sparse = |n: usize| GraphSpec::Sparse { n, seed: 7 };
    vec![
        (
            "01-flooding.json",
            table1_row(
                "table1-flooding",
                sparse(64),
                ProtocolSpec::Flooding,
                WakeSpec::Single { node: 0 },
                "flooding (baseline)",
                "time ρ_awk, msgs Θ(m)",
                "Baseline: flooding",
                "time = ρ_awk, messages = 2m (Section 1.2)",
                SWEEP,
            ),
        ),
        (
            "02-thm3.json",
            table1_row(
                "table1-thm3",
                sparse(64),
                ProtocolSpec::DfsRank,
                WakeSpec::Staggered { gap: 2.0 },
                "Theorem 3 (DfsRank)",
                "time & msgs O(n log n)",
                "T1.thm3 — DfsRank (async KT1 LOCAL), staggered adversary",
                "O(n log n) time and messages w.h.p.; shape column = n·ln n",
                SWEEP,
            ),
        ),
        (
            "03-thm4.json",
            table1_row(
                "table1-thm4",
                GraphSpec::Complete { n: 32 },
                ProtocolSpec::FastWakeUp,
                WakeSpec::All,
                "Theorem 4 (FastWakeUp)",
                "10ρ_awk rounds, msgs O(n^1.5 √log n)",
                "T1.thm4 — FastWakeUp (sync KT1 LOCAL), all awake on K_n",
                "10·ρ_awk rounds, O(n^{3/2}√log n) messages; shape = n^{1.5}·√ln n",
                &[32, 64, 128, 192],
            ),
        ),
        (
            "04-cor1.json",
            table1_row(
                "table1-cor1",
                sparse(64),
                ProtocolSpec::Cor1,
                WakeSpec::Single { node: 0 },
                "[FIP06], Cor. 1",
                "O(D) time, O(n) msgs, advice max O(n)/avg O(log n)",
                "T1.cor1 — BFS-tree advice ([FIP06], Cor. 1)",
                "O(D) time, O(n) messages, advice max O(n) / avg O(log n); shape = n",
                SWEEP,
            ),
        ),
        (
            "05-thm5a.json",
            table1_row(
                "table1-thm5a",
                sparse(64),
                ProtocolSpec::Thm5a,
                WakeSpec::Single { node: 0 },
                "Theorem 5(A)",
                "O(D) time, O(n^1.5) msgs, advice max O(√n log n)",
                "T1.thm5a — threshold advice (Thm 5A)",
                "O(D) time, O(n^{3/2}) messages, advice max O(√n log n); shape = n^{1.5}",
                SWEEP,
            ),
        ),
        (
            "06-thm5b.json",
            table1_row(
                "table1-thm5b",
                sparse(64),
                ProtocolSpec::Thm5b,
                WakeSpec::Single { node: 0 },
                "Theorem 5(B) (CEN)",
                "O(D log n) time, O(n) msgs, advice max O(log n)",
                "T1.thm5b — child-encoding advice (Thm 5B)",
                "O(D log n) time, O(n) messages, advice max O(log n); shape = n",
                SWEEP,
            ),
        ),
        (
            "07-thm6-k2.json",
            table1_row(
                "table1-thm6-k2",
                sparse(64),
                ProtocolSpec::Thm6 { k: 2 },
                WakeSpec::Single { node: 0 },
                "Theorem 6 (k=2)",
                "O(kρ log n) time, O(k n^{1+1/k} log n) msgs, advice O(n^{1/k} log² n)",
                "T1.thm6 — spanner advice, k = 2",
                "O(kρ log n) time, O(k n^{1+1/k} log n) messages, advice O(n^{1/k} log² n)",
                SWEEP,
            ),
        ),
        (
            "08-thm6-k3.json",
            table1_row(
                "table1-thm6-k3",
                sparse(64),
                ProtocolSpec::Thm6 { k: 3 },
                WakeSpec::Single { node: 0 },
                "Theorem 6 (k=3)",
                "as above with k=3",
                "T1.thm6 — spanner advice, k = 3",
                "same bounds at k = 3",
                SWEEP,
            ),
        ),
        (
            "09-cor2.json",
            table1_row(
                "table1-cor2",
                sparse(64),
                ProtocolSpec::Cor2,
                WakeSpec::Single { node: 0 },
                "Corollary 2",
                "O(ρ log² n) time, O(n log² n) msgs, advice O(log² n)",
                "T1.cor2 — spanner advice, k = ⌈log₂ n⌉ (Cor. 2)",
                "O(ρ log² n) time, O(n log² n) messages, advice O(log² n); shape = n·log² n",
                SWEEP,
            ),
        ),
    ]
}

/// The audit-harness base specs: each one drives the full conformance
/// battery, together covering every pairing the fixed harness used to
/// hardcode (per-message/per-round, reset, sharded, lockstep, scheme
/// advice, Nih on class 𝒢).
fn audit() -> Vec<(&'static str, ScenarioSpec)> {
    let staggered_pairs = WakeSpec::Pairs {
        pairs: vec![(0, 0.0), (5, 1.25), (11, 2.5)],
    };
    let base = |name: &str, graph, protocol, wake, delays, seed| ScenarioSpec {
        name: name.to_string(),
        graph,
        protocol,
        wake,
        delays,
        engine: engine(seed),
        report: None,
    };
    vec![
        (
            "01-flood-unit.json",
            base(
                "audit-flood-unit",
                GraphSpec::Sparse { n: 40, seed: 7 },
                ProtocolSpec::Flooding,
                staggered_pairs.clone(),
                DelaySpec::Unit,
                5,
            ),
        ),
        (
            "02-flood-random.json",
            base(
                "audit-flood-random",
                GraphSpec::Sparse { n: 40, seed: 7 },
                ProtocolSpec::Flooding,
                staggered_pairs.clone(),
                DelaySpec::Random { seed: 17 },
                5,
            ),
        ),
        (
            "03-flood-adversarial.json",
            base(
                "audit-flood-adversarial",
                GraphSpec::Sparse { n: 40, seed: 7 },
                ProtocolSpec::Flooding,
                staggered_pairs.clone(),
                DelaySpec::Adversarial { salt: 9 },
                3,
            ),
        ),
        (
            "04-flood-lockstep.json",
            base(
                "audit-flood-lockstep",
                GraphSpec::Sparse { n: 16, seed: 7 },
                ProtocolSpec::Flooding,
                WakeSpec::Pairs {
                    pairs: vec![(0, 0.0), (7, 2.0)],
                },
                DelaySpec::Unit,
                3,
            ),
        ),
        (
            "05-nih-class-g.json",
            base(
                "audit-nih-class-g",
                GraphSpec::ClassG { parameter: 8 },
                ProtocolSpec::Nih,
                WakeSpec::Centers,
                DelaySpec::Unit,
                2,
            ),
        ),
        (
            "06-spanner-k2.json",
            base(
                "audit-spanner-k2",
                GraphSpec::Sparse { n: 32, seed: 7 },
                ProtocolSpec::Thm6 { k: 2 },
                staggered_pairs.clone(),
                DelaySpec::Unit,
                4,
            ),
        ),
        (
            "07-fast-wakeup.json",
            base(
                "audit-fast-wakeup",
                GraphSpec::Sparse { n: 24, seed: 7 },
                ProtocolSpec::FastWakeUp,
                staggered_pairs,
                DelaySpec::Unit,
                6,
            ),
        ),
    ]
}

/// Worked examples of the non-Table-1 graph families.
fn families() -> Vec<(&'static str, ScenarioSpec)> {
    vec![
        (
            "torus.json",
            ScenarioSpec {
                name: "families-torus".to_string(),
                graph: GraphSpec::Torus { rows: 6, cols: 8 },
                protocol: ProtocolSpec::Flooding,
                wake: WakeSpec::Staggered { gap: 1.0 },
                delays: DelaySpec::FifoWorst,
                engine: engine(9),
                report: None,
            },
        ),
        (
            "power-law.json",
            ScenarioSpec {
                name: "families-power-law".to_string(),
                graph: GraphSpec::PowerLaw {
                    n: 40,
                    attach: 2,
                    seed: 5,
                },
                protocol: ProtocolSpec::DfsRank,
                wake: WakeSpec::Single { node: 0 },
                delays: DelaySpec::Adversarial { salt: 9 },
                engine: engine(9),
                report: None,
            },
        ),
        (
            "grid.json",
            ScenarioSpec {
                name: "families-grid".to_string(),
                graph: GraphSpec::Grid { rows: 10, cols: 15 },
                protocol: ProtocolSpec::Thm5b,
                wake: WakeSpec::Single { node: 0 },
                delays: DelaySpec::Unit,
                engine: engine(9),
                report: None,
            },
        ),
        // Worked example of the opt-in `report.obs` window config: fixed
        // 64-tick windows instead of the default log2 spacing.
        (
            "obs-windows.json",
            ScenarioSpec {
                name: "families-obs-windows".to_string(),
                graph: GraphSpec::Sparse { n: 48, seed: 7 },
                protocol: ProtocolSpec::Flooding,
                wake: WakeSpec::Staggered { gap: 1.0 },
                delays: DelaySpec::Unit,
                engine: engine(9),
                report: Some(ReportSpec {
                    label: "flooding (linear obs windows)".to_string(),
                    claim: "timeline bucketed into fixed 64-tick windows".to_string(),
                    experiments_title: "Obs: linear timeline windows".to_string(),
                    experiments_claim: "report.obs selects the recorder's window \
                                        spacing; runs stay byte-deterministic"
                        .to_string(),
                    sizes: vec![48, 96],
                    obs: Some(ObsWindowSpec::Linear { width: 64 }),
                }),
            },
        ),
    ]
}

fn write_all(dir: &Path, specs: Vec<(&'static str, ScenarioSpec)>) {
    std::fs::create_dir_all(dir).expect("create corpus dir");
    for (file, spec) in specs {
        spec.validate().expect("corpus specs must validate");
        let canonical = spec.to_canonical_json();
        // Canonical form must survive its own round trip before it is
        // allowed into the corpus.
        let reparsed = ScenarioSpec::parse(&canonical).expect("canonical parses");
        assert_eq!(reparsed, spec, "{file}: canonical round trip");
        let path = dir.join(file);
        std::fs::write(&path, canonical).expect("write spec file");
        println!("wrote {}", path.display());
    }
}

fn main() {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios")));
    write_all(&root.join("table1"), table1());
    write_all(&root.join("audit"), audit());
    write_all(&root.join("families"), families());
}
