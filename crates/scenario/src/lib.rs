//! Declarative workload specs for the adversarial wake-up harness.
//!
//! A **scenario** is one JSON document pinning everything an execution
//! depends on: the graph family and its parameters, the protocol under
//! test, the adversary's wake schedule and delay strategy (with its τ
//! cap), and the engine options (seed, shard count, audit eligibility).
//! This crate owns:
//!
//! * [`spec`] — the versioned schema, strict lossless parsing (unknown
//!   fields rejected, every range validated with a typed [`SpecError`]),
//!   and byte-stable canonical serialization;
//! * [`corpus`] — the checked-in `scenarios/` corpus loader (every Table 1
//!   row lives there as a spec file);
//! * [`run`] — the generic spec runner: build the graph, dispatch on the
//!   protocol, return a [`wakeup_sim::RunDigest`]-able report;
//! * [`gen`] — a seeded-deterministic generator of random *valid* specs;
//! * [`conformance`] (feature `audit`) — the differential battery that
//!   `wakeup fuzz` feeds each spec through: invariant audits,
//!   batched-vs-per-message, reset-vs-fresh, sharded-vs-serial, and
//!   lockstep-vs-sync where eligible, plus greedy spec minimization.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "audit")]
pub mod conformance;
pub mod corpus;
pub mod gen;
pub mod json;
pub mod run;
pub mod spec;

pub use spec::{
    DelaySpec, EngineSpec, GraphSpec, ObsWindowSpec, ProtocolSpec, ReportSpec, ScenarioSpec,
    SpecError, WakeSpec, MAX_SEED, SPEC_VERSION,
};
