//! Loader for the checked-in `scenarios/` corpus.
//!
//! Corpus files are stored in canonical form: loading one and
//! re-serializing it must reproduce the file bytes exactly (the
//! `scenarios` integration tests pin this for every file). Directory
//! resolution, in order:
//!
//! 1. the `WAKEUP_SCENARIOS` environment variable,
//! 2. `./scenarios` relative to the current directory (how the installed
//!    binaries run from a checkout),
//! 3. the workspace-relative path baked in at compile time (how `cargo
//!    test` finds the corpus from any crate's test cwd).

use std::path::{Path, PathBuf};

use crate::spec::{ScenarioSpec, SpecError};

/// The workspace corpus path baked in at compile time.
const BAKED_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios");

/// Resolves the corpus root directory.
pub fn dir() -> PathBuf {
    if let Ok(dir) = std::env::var("WAKEUP_SCENARIOS") {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    let local = PathBuf::from("scenarios");
    if local.is_dir() {
        return local;
    }
    PathBuf::from(BAKED_DIR)
}

fn io_err(path: &Path, err: std::io::Error) -> SpecError {
    SpecError::Io {
        path: path.display().to_string(),
        detail: err.to_string(),
    }
}

/// Loads and validates one spec file.
pub fn load_file(path: &Path) -> Result<ScenarioSpec, SpecError> {
    let text = std::fs::read_to_string(path).map_err(|e| io_err(path, e))?;
    ScenarioSpec::parse(&text)
}

/// Loads every `.json` spec in one corpus subdirectory, sorted by file name
/// (so `01-…` through `09-…` come back in Table 1 row order).
pub fn load_subdir(subdir: &str) -> Result<Vec<(PathBuf, ScenarioSpec)>, SpecError> {
    let root = dir().join(subdir);
    let entries = std::fs::read_dir(&root).map_err(|e| io_err(&root, e))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| load_file(&p).map(|spec| (p, spec)))
        .collect()
}

/// The Table 1 corpus, one spec per row, in row order.
pub fn table1() -> Result<Vec<(PathBuf, ScenarioSpec)>, SpecError> {
    let rows = load_subdir("table1")?;
    for (path, spec) in &rows {
        if spec.report.is_none() {
            return Err(SpecError::Incompatible {
                detail: format!(
                    "{}: table1 corpus specs must carry a report block",
                    path.display()
                ),
            });
        }
    }
    Ok(rows)
}

/// The audit-battery base specs.
pub fn audit() -> Result<Vec<(PathBuf, ScenarioSpec)>, SpecError> {
    load_subdir("audit")
}

/// Every spec in the corpus (all subdirectories plus the root), sorted by
/// path.
pub fn all() -> Result<Vec<(PathBuf, ScenarioSpec)>, SpecError> {
    fn walk(root: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
        for entry in std::fs::read_dir(root)? {
            let path = entry?.path();
            if path.is_dir() {
                walk(&path, out)?;
            } else if path.extension().is_some_and(|ext| ext == "json") {
                out.push(path);
            }
        }
        Ok(())
    }
    let root = dir();
    let mut paths = Vec::new();
    walk(&root, &mut paths).map_err(|e| io_err(&root, e))?;
    paths.sort();
    paths
        .into_iter()
        .map(|p| load_file(&p).map(|spec| (p, spec)))
        .collect()
}
