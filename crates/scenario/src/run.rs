//! The generic spec runner: build the graph, network, schedule, and delay
//! strategy a [`ScenarioSpec`] describes, dispatch on the protocol, and run.
//!
//! The construction mirrors the benchmark harness exactly — same
//! generators, same network seeding, same engine configuration — so a
//! corpus spec runs to the same [`wakeup_sim::RunDigest`] as the hardcoded
//! workload it replaced (the `scenarios` integration tests pin this).

use std::sync::Arc;

use crate::spec::{DelaySpec, GraphSpec, ObsWindowSpec, ProtocolSpec, ScenarioSpec, WakeSpec};
use wakeup_core::advice::{
    AdvisingScheme, BfsTreeScheme, CenScheme, SpannerScheme, ThresholdScheme,
};
use wakeup_core::dfs_rank::DfsRank;
use wakeup_core::fast_wakeup::FastWakeUp;
use wakeup_core::flooding::FloodAsync;
use wakeup_core::gossip::SetGossip;
use wakeup_core::nih::Nih;
use wakeup_graph::families::{ClassG, PowerLaw, Torus};
use wakeup_graph::{generators, Graph, NodeId};
use wakeup_sim::adversary::{
    AdversarialDelay, CappedDelay, DelayStrategy, FifoWorstDelay, RandomDelay, UnitDelay,
    WakeSchedule,
};
use wakeup_sim::advice::AdviceStats;
use wakeup_sim::{
    AsyncConfig, AsyncEngine, AsyncProtocol, BitStr, ChannelModel, KnowledgeMode, Network,
    RunReport, SyncConfig, SyncEngine, SyncProtocol, WindowCfg,
};

/// Builds the graph a validated spec describes.
///
/// # Panics
///
/// Panics if the spec was not validated ([`ScenarioSpec::validate`] accepts
/// exactly the parameter ranges the generators accept).
pub fn build_graph(graph: &GraphSpec) -> Graph {
    match *graph {
        GraphSpec::Sparse { n, seed } => {
            generators::erdos_renyi_connected(n, 8.0 / n as f64, seed).expect("validated spec")
        }
        GraphSpec::Complete { n } => generators::complete(n).expect("validated spec"),
        GraphSpec::Gnp { n, p, seed } => {
            generators::erdos_renyi_connected(n, p, seed).expect("validated spec")
        }
        GraphSpec::Grid { rows, cols } => generators::grid(rows, cols).expect("validated spec"),
        GraphSpec::Torus { rows, cols } => Torus::new(rows, cols)
            .expect("validated spec")
            .graph()
            .clone(),
        GraphSpec::PowerLaw { n, attach, seed } => PowerLaw::new(n, attach, seed)
            .expect("validated spec")
            .graph()
            .clone(),
        GraphSpec::ClassG { parameter } => ClassG::new(parameter)
            .expect("validated spec")
            .graph()
            .clone(),
    }
}

/// Builds the network: the spec's graph under the knowledge mode the
/// protocol is defined for, seeded with the engine seed (the corpus
/// convention; for `sparse` rows the graph seed equals the engine seed,
/// matching the benchmark artifact keys).
pub fn build_network(spec: &ScenarioSpec) -> Network {
    let graph = build_graph(&spec.graph);
    match spec.protocol.knowledge_mode() {
        KnowledgeMode::Kt0 => Network::kt0(graph, spec.engine.seed),
        KnowledgeMode::Kt1 => Network::kt1(graph, spec.engine.seed),
    }
}

/// Builds the wake schedule over `n` nodes.
pub fn build_schedule(spec: &ScenarioSpec) -> WakeSchedule {
    let n = spec.graph.node_count();
    match &spec.wake {
        WakeSpec::Single { node } => WakeSchedule::single(NodeId::new(*node)),
        WakeSpec::All => {
            let all: Vec<NodeId> = (0..n).map(NodeId::new).collect();
            WakeSchedule::all_at_zero(&all)
        }
        WakeSpec::Staggered { gap } => {
            let all: Vec<NodeId> = (0..n).map(NodeId::new).collect();
            WakeSchedule::staggered(&all, *gap)
        }
        WakeSpec::Pairs { pairs } => {
            let pairs: Vec<(NodeId, f64)> = pairs
                .iter()
                .map(|&(node, time)| (NodeId::new(node), time))
                .collect();
            WakeSchedule::from_pairs(&pairs)
        }
        WakeSpec::Centers => {
            let GraphSpec::ClassG { parameter } = spec.graph else {
                unreachable!("validation pins centers to class-g");
            };
            let centers: Vec<NodeId> = (parameter..2 * parameter).map(NodeId::new).collect();
            WakeSchedule::all_at_zero(&centers)
        }
    }
}

/// Builds the delay strategy as a boxed trait object.
pub fn build_delays(delays: &DelaySpec) -> Box<dyn DelayStrategy + Send> {
    match delays {
        DelaySpec::Unit => Box::new(UnitDelay),
        DelaySpec::Random { seed } => Box::new(RandomDelay::new(*seed)),
        DelaySpec::Adversarial { salt } => Box::new(AdversarialDelay::new(*salt)),
        DelaySpec::FifoWorst => Box::new(FifoWorstDelay::default()),
        DelaySpec::Capped { inner, tau_ticks } => {
            Box::new(CappedDelay::new(build_delays(inner), *tau_ticks))
        }
    }
}

/// The outcome of running a spec.
#[derive(Debug, Clone)]
pub struct SpecRun {
    /// The engine report.
    pub report: RunReport,
    /// Advice-length statistics for scheme protocols (None otherwise).
    pub advice: Option<AdviceStats>,
}

/// A visitor over the concrete async protocol type a spec resolves to.
///
/// The spec's protocol is data; the engines and differential wrappers are
/// generic over a protocol *type*. This trait is the bridge: implement it
/// with whatever generic logic a caller needs (a plain run, a
/// batched-vs-per-message comparison, a lockstep check) and hand it to
/// [`dispatch_async`], which performs the enum-to-type dispatch once.
pub trait AsyncDispatch {
    /// The result of the visit.
    type Out;

    /// Called with the resolved protocol type and the scheme context
    /// (CONGEST channel + oracle advice for advising schemes, `Local` and
    /// `None` otherwise).
    fn call<P: AsyncProtocol>(
        self,
        net: &Network,
        channel: ChannelModel,
        advice: Option<Arc<Vec<BitStr>>>,
    ) -> Self::Out;
}

/// Resolves the spec's async protocol and invokes the visitor; `None` for
/// synchronous protocols.
pub fn dispatch_async<V: AsyncDispatch>(
    spec: &ScenarioSpec,
    net: &Network,
    visitor: V,
) -> Option<(V::Out, Option<AdviceStats>)> {
    fn scheme<V: AsyncDispatch, S: AdvisingScheme>(
        scheme: &S,
        net: &Network,
        visitor: V,
    ) -> Option<(V::Out, Option<AdviceStats>)> {
        let advice = Arc::new(scheme.advise(net));
        let stats = AdviceStats::measure(&advice);
        let channel = scheme.channel(net.n());
        Some((
            visitor.call::<S::Protocol>(net, channel, Some(advice)),
            Some(stats),
        ))
    }
    let plain = |out| Some((out, None));
    match spec.protocol {
        ProtocolSpec::Flooding => plain(visitor.call::<FloodAsync>(net, ChannelModel::Local, None)),
        ProtocolSpec::DfsRank => plain(visitor.call::<DfsRank>(net, ChannelModel::Local, None)),
        ProtocolSpec::Nih => plain(visitor.call::<Nih<FloodAsync>>(net, ChannelModel::Local, None)),
        ProtocolSpec::Cor1 => scheme(&BfsTreeScheme::new(), net, visitor),
        ProtocolSpec::Thm5a => scheme(&ThresholdScheme::new(), net, visitor),
        ProtocolSpec::Thm5b => scheme(&CenScheme::new(), net, visitor),
        ProtocolSpec::Thm6 { k } => scheme(&SpannerScheme::new(k), net, visitor),
        ProtocolSpec::Cor2 => scheme(&SpannerScheme::log_instantiation(net.n()), net, visitor),
        ProtocolSpec::FastWakeUp | ProtocolSpec::Gossip => None,
    }
}

/// The synchronous counterpart of [`AsyncDispatch`].
pub trait SyncDispatch {
    /// The result of the visit.
    type Out;

    /// Called with the resolved protocol type.
    fn call<P: SyncProtocol>(self, net: &Network) -> Self::Out;
}

/// Resolves the spec's sync protocol and invokes the visitor; `None` for
/// asynchronous protocols.
pub fn dispatch_sync<V: SyncDispatch>(
    spec: &ScenarioSpec,
    net: &Network,
    visitor: V,
) -> Option<V::Out> {
    match spec.protocol {
        ProtocolSpec::FastWakeUp => Some(visitor.call::<FastWakeUp>(net)),
        ProtocolSpec::Gossip => Some(visitor.call::<SetGossip>(net)),
        _ => None,
    }
}

/// Maps the spec's optional `report.obs` window config onto the engines'
/// timeline window layout (the default log2 spacing when absent).
fn obs_windows(spec: &ScenarioSpec) -> WindowCfg {
    match spec.report.as_ref().and_then(|r| r.obs) {
        Some(ObsWindowSpec::Linear { width }) => WindowCfg::Linear { width },
        Some(ObsWindowSpec::Log2) | None => WindowCfg::Log2,
    }
}

/// The async engine configuration a spec pins (advice is filled in by the
/// dispatcher, channel by the scheme).
pub fn async_config(
    spec: &ScenarioSpec,
    channel: ChannelModel,
    advice: Option<Arc<Vec<BitStr>>>,
) -> AsyncConfig {
    AsyncConfig {
        channel,
        seed: spec.engine.seed,
        advice,
        shards: spec.engine.shards,
        obs_windows: obs_windows(spec),
        ..AsyncConfig::default()
    }
}

/// The sync engine configuration a spec pins.
pub fn sync_config(spec: &ScenarioSpec) -> SyncConfig {
    SyncConfig {
        seed: spec.engine.seed,
        shards: spec.engine.shards,
        obs_windows: obs_windows(spec),
        ..SyncConfig::default()
    }
}

struct PlainRun<'s> {
    spec: &'s ScenarioSpec,
    schedule: &'s WakeSchedule,
}

impl AsyncDispatch for PlainRun<'_> {
    type Out = RunReport;

    fn call<P: AsyncProtocol>(
        self,
        net: &Network,
        channel: ChannelModel,
        advice: Option<Arc<Vec<BitStr>>>,
    ) -> RunReport {
        let config = async_config(self.spec, channel, advice);
        let mut delays = build_delays(&self.spec.delays);
        AsyncEngine::<P>::new(net, config).run_with(self.schedule, &mut delays)
    }
}

impl SyncDispatch for PlainRun<'_> {
    type Out = RunReport;

    fn call<P: SyncProtocol>(self, net: &Network) -> RunReport {
        SyncEngine::<P>::new(net, sync_config(self.spec)).run(self.schedule)
    }
}

/// Runs a validated spec end to end.
pub fn run_spec(spec: &ScenarioSpec) -> SpecRun {
    let net = build_network(spec);
    run_spec_on(spec, &net)
}

/// As [`run_spec`], with a caller-provided network (so repeated runs —
/// conformance checks, trials — reuse one table build).
pub fn run_spec_on(spec: &ScenarioSpec, net: &Network) -> SpecRun {
    let schedule = build_schedule(spec);
    let visitor = PlainRun {
        spec,
        schedule: &schedule,
    };
    if spec.protocol.is_sync() {
        let report = dispatch_sync(spec, net, visitor).expect("sync protocol");
        SpecRun {
            report,
            advice: None,
        }
    } else {
        let (report, advice) = dispatch_async(spec, net, visitor).expect("async protocol");
        SpecRun { report, advice }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{EngineSpec, ScenarioSpec};

    fn spec(
        graph: GraphSpec,
        protocol: ProtocolSpec,
        wake: WakeSpec,
        delays: DelaySpec,
    ) -> ScenarioSpec {
        ScenarioSpec {
            name: "runner-test".into(),
            graph,
            protocol,
            wake,
            delays,
            engine: EngineSpec {
                seed: 7,
                shards: 1,
                audit: true,
            },
            report: None,
        }
    }

    #[test]
    fn flooding_spec_matches_harness_run() {
        let s = spec(
            GraphSpec::Sparse { n: 32, seed: 7 },
            ProtocolSpec::Flooding,
            WakeSpec::Single { node: 0 },
            DelaySpec::Unit,
        );
        s.validate().unwrap();
        let run = run_spec(&s);
        assert!(run.report.all_awake);
        let net = Network::kt0(build_graph(&s.graph), 7);
        let reference = wakeup_core::harness::run_async::<FloodAsync>(&net, &build_schedule(&s), 7);
        assert_eq!(run.report.messages(), reference.report.messages());
        assert_eq!(
            run.report.time_units().to_bits(),
            reference.report.time_units().to_bits()
        );
    }

    #[test]
    fn scheme_spec_matches_run_scheme() {
        let s = spec(
            GraphSpec::Sparse { n: 48, seed: 7 },
            ProtocolSpec::Thm5b,
            WakeSpec::Single { node: 0 },
            DelaySpec::Unit,
        );
        s.validate().unwrap();
        let run = run_spec(&s);
        assert!(run.report.all_awake);
        let advice = run.advice.expect("scheme run reports advice");
        let net = Network::kt0(build_graph(&s.graph), 7);
        let reference = wakeup_core::advice::run_scheme(
            &CenScheme::new(),
            &net,
            &WakeSchedule::single(NodeId::new(0)),
            7,
        );
        assert_eq!(run.report.messages(), reference.report.messages());
        assert_eq!(advice.max_bits, reference.advice.max_bits);
        assert_eq!(
            advice.avg_bits.to_bits(),
            reference.advice.avg_bits.to_bits()
        );
    }

    #[test]
    fn sync_and_family_specs_run() {
        let fast = spec(
            GraphSpec::Complete { n: 16 },
            ProtocolSpec::FastWakeUp,
            WakeSpec::All,
            DelaySpec::Unit,
        );
        fast.validate().unwrap();
        assert!(run_spec(&fast).report.all_awake);

        let torus = spec(
            GraphSpec::Torus { rows: 4, cols: 5 },
            ProtocolSpec::Flooding,
            WakeSpec::Staggered { gap: 0.5 },
            DelaySpec::Random { seed: 3 },
        );
        torus.validate().unwrap();
        assert!(run_spec(&torus).report.all_awake);

        let nih = spec(
            GraphSpec::ClassG { parameter: 6 },
            ProtocolSpec::Nih,
            WakeSpec::Centers,
            DelaySpec::Capped {
                inner: Box::new(DelaySpec::Adversarial { salt: 9 }),
                tau_ticks: 16,
            },
        );
        nih.validate().unwrap();
        assert!(run_spec(&nih).report.all_awake);
    }

    #[test]
    fn shard_count_comes_from_the_spec() {
        let mut s = spec(
            GraphSpec::PowerLaw {
                n: 40,
                attach: 2,
                seed: 5,
            },
            ProtocolSpec::Flooding,
            WakeSpec::Single { node: 3 },
            DelaySpec::Unit,
        );
        s.validate().unwrap();
        let serial = run_spec(&s);
        s.engine.shards = 4;
        s.validate().unwrap();
        let sharded = run_spec(&s);
        assert_eq!(serial.report.messages(), sharded.report.messages());
        assert_eq!(
            serial.report.obs_snapshot().to_json(),
            sharded.report.obs_snapshot().to_json()
        );
    }
}
