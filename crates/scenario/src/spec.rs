//! The versioned scenario spec: schema, typed validation errors, strict
//! lossless parsing, and byte-stable canonical serialization.
//!
//! A spec pins one complete workload: graph family + parameters, wake
//! schedule, delay strategy (with its τ cap), protocol (including the
//! advice budget knob, Theorem 6's `k`), and engine options (seed, shard
//! count, audit eligibility). Every field is validated with a typed
//! [`SpecError`]; unknown fields are rejected so a typo can never silently
//! change a workload. `parse` then [`ScenarioSpec::to_canonical_json`] is
//! the identity on canonical input — the property the checked-in corpus
//! and its byte-stability tests rely on.

use std::fmt;

use crate::json::{self, Value};
use wakeup_sim::TICKS_PER_UNIT;

/// The only spec version this crate reads or writes.
pub const SPEC_VERSION: u64 = 1;

/// Largest node count a spec may describe (the engines' relabeling
/// eligibility bound; anything bigger belongs in `engine_perf`, not a
/// declarative scenario).
pub const MAX_NODES: usize = 1 << 20;

/// Seeds and salts must be exactly representable through the JSON `f64`
/// carrier, so specs cap them at 2³².
pub const MAX_SEED: u64 = u32::MAX as u64;

/// A typed spec failure. Every variant names the JSON path it happened at,
/// so a hand-edited corpus file fails with an actionable message.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The document is not valid JSON.
    Json {
        /// Byte offset of the syntax error.
        offset: usize,
        /// Parser detail.
        detail: String,
    },
    /// The top-level `version` is not [`SPEC_VERSION`].
    UnsupportedVersion {
        /// The version the document declared.
        found: u64,
    },
    /// An object carries a key the schema does not define.
    UnknownField {
        /// JSON path of the object.
        at: String,
        /// The offending key.
        field: String,
    },
    /// A required key is absent.
    MissingField {
        /// JSON path of the object.
        at: String,
        /// The absent key.
        field: String,
    },
    /// A value has the wrong JSON type or is not exactly representable.
    WrongType {
        /// JSON path of the value.
        at: String,
        /// What the schema expects there.
        expected: &'static str,
    },
    /// A tag string is not one of the allowed variants.
    UnknownVariant {
        /// JSON path of the tag.
        at: String,
        /// The value found.
        value: String,
        /// The allowed variants.
        allowed: &'static str,
    },
    /// A value is outside its validated range.
    OutOfRange {
        /// JSON path of the value.
        at: String,
        /// The violated constraint.
        detail: String,
    },
    /// Two valid fields contradict each other.
    Incompatible {
        /// Description of the clash.
        detail: String,
    },
    /// A file could not be read.
    Io {
        /// The path involved.
        path: String,
        /// OS-level detail.
        detail: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Json { offset, detail } => {
                write!(f, "invalid JSON at byte {offset}: {detail}")
            }
            SpecError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported spec version {found} (this build reads version {SPEC_VERSION})"
                )
            }
            SpecError::UnknownField { at, field } => write!(f, "{at}: unknown field {field:?}"),
            SpecError::MissingField { at, field } => {
                write!(f, "{at}: missing required field {field:?}")
            }
            SpecError::WrongType { at, expected } => write!(f, "{at}: expected {expected}"),
            SpecError::UnknownVariant { at, value, allowed } => {
                write!(f, "{at}: unknown variant {value:?} (allowed: {allowed})")
            }
            SpecError::OutOfRange { at, detail } => write!(f, "{at}: {detail}"),
            SpecError::Incompatible { detail } => write!(f, "incompatible spec: {detail}"),
            SpecError::Io { path, detail } => write!(f, "{path}: {detail}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// A complete validated scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Short kebab-case identifier.
    pub name: String,
    /// Graph family and parameters.
    pub graph: GraphSpec,
    /// The protocol under test (fixes the knowledge mode).
    pub protocol: ProtocolSpec,
    /// The adversary's wake schedule.
    pub wake: WakeSpec,
    /// The adversary's delay strategy (async protocols only).
    pub delays: DelaySpec,
    /// Engine options.
    pub engine: EngineSpec,
    /// Optional presentation block used by the report binaries.
    pub report: Option<ReportSpec>,
}

/// Graph family + parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphSpec {
    /// The benchmark's standard sparse workload:
    /// `erdos_renyi_connected(n, 8/n, seed)`.
    Sparse {
        /// Node count (≥ 8 so the edge probability stays ≤ 1).
        n: usize,
        /// Generator seed.
        seed: u64,
    },
    /// The complete graph `K_n`.
    Complete {
        /// Node count.
        n: usize,
    },
    /// A connected Erdős–Rényi sample with explicit edge probability.
    Gnp {
        /// Node count.
        n: usize,
        /// Edge probability in `(0, 1]`.
        p: f64,
        /// Generator seed.
        seed: u64,
    },
    /// A non-wrapping rows × cols grid.
    Grid {
        /// Grid rows (≥ 2).
        rows: usize,
        /// Grid columns (≥ 2).
        cols: usize,
    },
    /// A wrapping rows × cols torus (4-regular).
    Torus {
        /// Torus rows (≥ 3).
        rows: usize,
        /// Torus columns (≥ 3).
        cols: usize,
    },
    /// A preferential-attachment power-law family instance.
    PowerLaw {
        /// Node count.
        n: usize,
        /// Edges attached per arriving node.
        attach: usize,
        /// Generator seed.
        seed: u64,
    },
    /// The lower-bound class 𝒢 instance with the given parameter (3 ×
    /// parameter nodes).
    ClassG {
        /// Section size (|U| = |V| = |W|).
        parameter: usize,
    },
}

impl GraphSpec {
    /// The node count the family parameters determine.
    pub fn node_count(&self) -> usize {
        match *self {
            GraphSpec::Sparse { n, .. }
            | GraphSpec::Complete { n }
            | GraphSpec::Gnp { n, .. }
            | GraphSpec::PowerLaw { n, .. } => n,
            GraphSpec::Grid { rows, cols } | GraphSpec::Torus { rows, cols } => rows * cols,
            GraphSpec::ClassG { parameter } => 3 * parameter,
        }
    }
}

/// The protocol under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolSpec {
    /// Baseline asynchronous flooding (KT0).
    Flooding,
    /// Theorem 3's DFS-rank token walk (KT1).
    DfsRank,
    /// Theorem 4's synchronous FastWakeUp (KT1).
    FastWakeUp,
    /// Synchronous set gossip (KT1).
    Gossip,
    /// Needle-in-haystack flooding on class 𝒢 (KT0).
    Nih,
    /// \[FIP06\]/Corollary 1 BFS-tree advice scheme (KT0 CONGEST).
    Cor1,
    /// Theorem 5(A) threshold advice scheme (KT0 CONGEST).
    Thm5a,
    /// Theorem 5(B) child-encoding advice scheme (KT0 CONGEST).
    Thm5b,
    /// Theorem 6 spanner advice scheme at stretch parameter `k`.
    Thm6 {
        /// The advice-budget knob (spanner stretch parameter).
        k: usize,
    },
    /// Corollary 2: the spanner scheme at `k = ⌈log₂ n⌉`.
    Cor2,
}

impl ProtocolSpec {
    /// Whether the protocol runs on the synchronous engine (delay
    /// strategies then do not apply).
    pub fn is_sync(&self) -> bool {
        matches!(self, ProtocolSpec::FastWakeUp | ProtocolSpec::Gossip)
    }

    /// Whether the protocol consumes oracle advice (Section 4 schemes).
    pub fn is_scheme(&self) -> bool {
        matches!(
            self,
            ProtocolSpec::Cor1
                | ProtocolSpec::Thm5a
                | ProtocolSpec::Thm5b
                | ProtocolSpec::Thm6 { .. }
                | ProtocolSpec::Cor2
        )
    }

    /// The knowledge mode the protocol is defined for.
    pub fn knowledge_mode(&self) -> wakeup_sim::KnowledgeMode {
        match self {
            ProtocolSpec::DfsRank | ProtocolSpec::FastWakeUp | ProtocolSpec::Gossip => {
                wakeup_sim::KnowledgeMode::Kt1
            }
            _ => wakeup_sim::KnowledgeMode::Kt0,
        }
    }

    /// The JSON `kind` tag this protocol serializes under (also the
    /// human-readable protocol name the CLI prints).
    pub fn kind_tag(&self) -> &'static str {
        match self {
            ProtocolSpec::Flooding => "flooding",
            ProtocolSpec::DfsRank => "dfs-rank",
            ProtocolSpec::FastWakeUp => "fast-wakeup",
            ProtocolSpec::Gossip => "gossip",
            ProtocolSpec::Nih => "nih",
            ProtocolSpec::Cor1 => "cor1",
            ProtocolSpec::Thm5a => "thm5a",
            ProtocolSpec::Thm5b => "thm5b",
            ProtocolSpec::Thm6 { .. } => "thm6",
            ProtocolSpec::Cor2 => "cor2",
        }
    }
}

/// The adversary's wake schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum WakeSpec {
    /// One node wakes at time 0.
    Single {
        /// The woken node.
        node: usize,
    },
    /// Every node wakes at time 0.
    All,
    /// Nodes `0..n` wake `gap` time units apart.
    Staggered {
        /// Gap between consecutive wakes, in τ units.
        gap: f64,
    },
    /// An explicit `(node, time)` list, times non-decreasing.
    Pairs {
        /// The wake events.
        pairs: Vec<(usize, f64)>,
    },
    /// The class-𝒢 center nodes wake at time 0 (class-g graphs only).
    Centers,
}

/// The adversary's delay strategy.
#[derive(Debug, Clone, PartialEq)]
pub enum DelaySpec {
    /// Every message takes exactly τ.
    Unit,
    /// Seeded uniform delays.
    Random {
        /// Strategy seed.
        seed: u64,
    },
    /// The deterministic worst-case-flavored strategy.
    Adversarial {
        /// Strategy salt.
        salt: u64,
    },
    /// Alternating fast/slow delays that stress FIFO restoration.
    FifoWorst,
    /// An inner strategy clamped to `tau_ticks`.
    Capped {
        /// The wrapped strategy (must not itself be `Capped`).
        inner: Box<DelaySpec>,
        /// The cap in ticks, `1..=TICKS_PER_UNIT`.
        tau_ticks: u64,
    },
}

impl DelaySpec {
    /// The effective τ cap in ticks (`TICKS_PER_UNIT` unless capped).
    pub fn max_delay_ticks(&self) -> u64 {
        match self {
            DelaySpec::Capped { tau_ticks, .. } => *tau_ticks,
            _ => TICKS_PER_UNIT,
        }
    }
}

/// Engine options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineSpec {
    /// Engine seed (node randomness).
    pub seed: u64,
    /// Intra-run shard count, `1..=16`.
    pub shards: usize,
    /// Whether conformance runs may attach the audit recorder.
    pub audit: bool,
}

/// Presentation strings for the report binaries (`table1`, `experiments`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportSpec {
    /// Table 1 row label.
    pub label: String,
    /// Table 1 claimed-bounds string.
    pub claim: String,
    /// `experiments` section title.
    pub experiments_title: String,
    /// `experiments` claim line.
    pub experiments_claim: String,
    /// The n-sweep sizes.
    pub sizes: Vec<usize>,
    /// Opt-in obs timeline window spacing for report runs (`None` = the
    /// engine default, log-spaced).
    pub obs: Option<ObsWindowSpec>,
}

/// Window spacing of the schema-4 obs timeline, mirrored onto
/// [`wakeup_sim::WindowCfg`] by the runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsWindowSpec {
    /// Log-spaced windows: window `w` covers ticks `[2^w − 1, 2^(w+1) − 1)`.
    Log2,
    /// Fixed-width windows of `width` ticks each (capped at 4096 windows by
    /// the recorder).
    Linear {
        /// Window width in ticks, `1..=2^32`.
        width: u64,
    },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// A helper that consumes known fields from one object and rejects leftovers.
struct Fields {
    at: String,
    fields: Vec<(String, Value)>,
}

impl Fields {
    fn new(at: &str, value: &Value) -> Result<Fields, SpecError> {
        match value {
            Value::Obj(fields) => Ok(Fields {
                at: at.to_string(),
                fields: fields.clone(),
            }),
            _ => Err(SpecError::WrongType {
                at: at.to_string(),
                expected: "an object",
            }),
        }
    }

    fn take(&mut self, key: &str) -> Option<Value> {
        let i = self.fields.iter().position(|(k, _)| k == key)?;
        Some(self.fields.remove(i).1)
    }

    fn require(&mut self, key: &str) -> Result<Value, SpecError> {
        self.take(key).ok_or_else(|| SpecError::MissingField {
            at: self.at.clone(),
            field: key.to_string(),
        })
    }

    fn finish(self) -> Result<(), SpecError> {
        match self.fields.into_iter().next() {
            Some((field, _)) => Err(SpecError::UnknownField { at: self.at, field }),
            None => Ok(()),
        }
    }

    fn path(&self, key: &str) -> String {
        format!("{}.{}", self.at, key)
    }
}

fn as_uint(at: &str, value: &Value, max: u64) -> Result<u64, SpecError> {
    match value {
        Value::Num(x) if x.fract() == 0.0 && *x >= 0.0 && *x <= max as f64 => Ok(*x as u64),
        Value::Num(_) => Err(SpecError::OutOfRange {
            at: at.to_string(),
            detail: format!("must be an integer in 0..={max}"),
        }),
        _ => Err(SpecError::WrongType {
            at: at.to_string(),
            expected: "a non-negative integer",
        }),
    }
}

fn as_f64(at: &str, value: &Value) -> Result<f64, SpecError> {
    match value {
        Value::Num(x) => Ok(*x),
        _ => Err(SpecError::WrongType {
            at: at.to_string(),
            expected: "a number",
        }),
    }
}

fn as_str(at: &str, value: &Value) -> Result<String, SpecError> {
    match value {
        Value::Str(s) => Ok(s.clone()),
        _ => Err(SpecError::WrongType {
            at: at.to_string(),
            expected: "a string",
        }),
    }
}

fn as_bool(at: &str, value: &Value) -> Result<bool, SpecError> {
    match value {
        Value::Bool(b) => Ok(*b),
        _ => Err(SpecError::WrongType {
            at: at.to_string(),
            expected: "a boolean",
        }),
    }
}

impl ScenarioSpec {
    /// Parses and validates a spec document.
    pub fn parse(input: &str) -> Result<ScenarioSpec, SpecError> {
        let value = json::parse(input).map_err(|e| SpecError::Json {
            offset: e.offset,
            detail: e.detail,
        })?;
        let spec = Self::from_value(&value)?;
        spec.validate()?;
        Ok(spec)
    }

    fn from_value(value: &Value) -> Result<ScenarioSpec, SpecError> {
        let mut top = Fields::new("$", value)?;
        let version = as_uint(&top.path("version"), &top.require("version")?, u64::MAX)?;
        if version != SPEC_VERSION {
            return Err(SpecError::UnsupportedVersion { found: version });
        }
        let name = as_str(&top.path("name"), &top.require("name")?)?;
        let graph = parse_graph(&top.path("graph"), &top.require("graph")?)?;
        let protocol = parse_protocol(&top.path("protocol"), &top.require("protocol")?)?;
        let wake = parse_wake(&top.path("wake"), &top.require("wake")?)?;
        let delays = parse_delays(&top.path("delays"), &top.require("delays")?)?;
        let engine = parse_engine(&top.path("engine"), &top.require("engine")?)?;
        let report = match top.take("report") {
            Some(v) => Some(parse_report(&top.path("report"), &v)?),
            None => None,
        };
        top.finish()?;
        Ok(ScenarioSpec {
            name,
            graph,
            protocol,
            wake,
            delays,
            engine,
            report,
        })
    }

    /// Re-checks every cross-field invariant. `parse` calls this; generated
    /// and programmatically edited specs should call it too.
    pub fn validate(&self) -> Result<(), SpecError> {
        let name_ok = !self.name.is_empty()
            && self.name.len() <= 64
            && self
                .name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-');
        if !name_ok {
            return Err(SpecError::OutOfRange {
                at: "$.name".into(),
                detail: "must be 1..=64 chars of [a-z0-9-]".into(),
            });
        }
        validate_graph(&self.graph)?;
        let n = self.graph.node_count();
        validate_wake(&self.wake, n)?;
        validate_delays(&self.delays)?;
        if let ProtocolSpec::Thm6 { k } = self.protocol {
            if !(2..=8).contains(&k) {
                return Err(SpecError::OutOfRange {
                    at: "$.protocol.k".into(),
                    detail: "k must be in 2..=8".into(),
                });
            }
        }
        if self.protocol.is_sync() && self.delays != DelaySpec::Unit {
            return Err(SpecError::Incompatible {
                detail: format!(
                    "protocol {:?} is synchronous; delays must be {{\"kind\": \"unit\"}}",
                    self.protocol
                ),
            });
        }
        if self.protocol == ProtocolSpec::Nih && !matches!(self.graph, GraphSpec::ClassG { .. }) {
            return Err(SpecError::Incompatible {
                detail: "protocol \"nih\" requires the \"class-g\" graph family".into(),
            });
        }
        if self.wake == WakeSpec::Centers && !matches!(self.graph, GraphSpec::ClassG { .. }) {
            return Err(SpecError::Incompatible {
                detail: "wake \"centers\" requires the \"class-g\" graph family".into(),
            });
        }
        if !(1..=16).contains(&self.engine.shards) {
            return Err(SpecError::OutOfRange {
                at: "$.engine.shards".into(),
                detail: "must be in 1..=16".into(),
            });
        }
        if let Some(report) = &self.report {
            if report.sizes.is_empty() {
                return Err(SpecError::OutOfRange {
                    at: "$.report.sizes".into(),
                    detail: "must list at least one size".into(),
                });
            }
            for &s in &report.sizes {
                if !(2..=MAX_NODES).contains(&s) {
                    return Err(SpecError::OutOfRange {
                        at: "$.report.sizes".into(),
                        detail: format!("size {s} outside 2..={MAX_NODES}"),
                    });
                }
            }
            if report.obs == Some(ObsWindowSpec::Linear { width: 0 }) {
                return Err(SpecError::OutOfRange {
                    at: "$.report.obs.width".into(),
                    detail: "linear window width must be at least 1 tick".into(),
                });
            }
        }
        Ok(())
    }

    /// Builds the canonical byte form (schema key order, two-space pretty
    /// layout, trailing newline). `parse(to_canonical_json())` returns an
    /// equal spec, and re-serializing that spec reproduces the same bytes.
    pub fn to_canonical_json(&self) -> String {
        json::canonical(&self.to_value())
    }

    fn to_value(&self) -> Value {
        let mut top = vec![
            ("version".to_string(), Value::Num(SPEC_VERSION as f64)),
            ("name".to_string(), Value::Str(self.name.clone())),
            ("graph".to_string(), graph_value(&self.graph)),
            ("protocol".to_string(), protocol_value(&self.protocol)),
            ("wake".to_string(), wake_value(&self.wake)),
            ("delays".to_string(), delays_value(&self.delays)),
            ("engine".to_string(), engine_value(&self.engine)),
        ];
        if let Some(report) = &self.report {
            top.push(("report".to_string(), report_value(report)));
        }
        Value::Obj(top)
    }
}

fn parse_graph(at: &str, value: &Value) -> Result<GraphSpec, SpecError> {
    let mut f = Fields::new(at, value)?;
    let family = as_str(&f.path("family"), &f.require("family")?)?;
    let graph = match family.as_str() {
        "sparse" => GraphSpec::Sparse {
            n: as_uint(&f.path("n"), &f.require("n")?, MAX_NODES as u64)? as usize,
            seed: as_uint(&f.path("seed"), &f.require("seed")?, MAX_SEED)?,
        },
        "complete" => GraphSpec::Complete {
            n: as_uint(&f.path("n"), &f.require("n")?, MAX_NODES as u64)? as usize,
        },
        "gnp" => GraphSpec::Gnp {
            n: as_uint(&f.path("n"), &f.require("n")?, MAX_NODES as u64)? as usize,
            p: as_f64(&f.path("p"), &f.require("p")?)?,
            seed: as_uint(&f.path("seed"), &f.require("seed")?, MAX_SEED)?,
        },
        "grid" => GraphSpec::Grid {
            rows: as_uint(&f.path("rows"), &f.require("rows")?, MAX_NODES as u64)? as usize,
            cols: as_uint(&f.path("cols"), &f.require("cols")?, MAX_NODES as u64)? as usize,
        },
        "torus" => GraphSpec::Torus {
            rows: as_uint(&f.path("rows"), &f.require("rows")?, MAX_NODES as u64)? as usize,
            cols: as_uint(&f.path("cols"), &f.require("cols")?, MAX_NODES as u64)? as usize,
        },
        "power-law" => GraphSpec::PowerLaw {
            n: as_uint(&f.path("n"), &f.require("n")?, MAX_NODES as u64)? as usize,
            attach: as_uint(&f.path("attach"), &f.require("attach")?, MAX_NODES as u64)? as usize,
            seed: as_uint(&f.path("seed"), &f.require("seed")?, MAX_SEED)?,
        },
        "class-g" => GraphSpec::ClassG {
            parameter: as_uint(&f.path("parameter"), &f.require("parameter")?, 1 << 10)? as usize,
        },
        other => {
            return Err(SpecError::UnknownVariant {
                at: f.path("family"),
                value: other.to_string(),
                allowed: "sparse, complete, gnp, grid, torus, power-law, class-g",
            })
        }
    };
    f.finish()?;
    Ok(graph)
}

fn validate_graph(graph: &GraphSpec) -> Result<(), SpecError> {
    let range = |at: &str, v: usize, lo: usize, hi: usize, what: &str| {
        if (lo..=hi).contains(&v) {
            Ok(())
        } else {
            Err(SpecError::OutOfRange {
                at: at.to_string(),
                detail: format!("{what} must be in {lo}..={hi}, got {v}"),
            })
        }
    };
    match *graph {
        GraphSpec::Sparse { n, .. } => range("$.graph.n", n, 8, MAX_NODES, "sparse n")?,
        GraphSpec::Complete { n } => range("$.graph.n", n, 2, 4096, "complete n")?,
        GraphSpec::Gnp { n, p, .. } => {
            range("$.graph.n", n, 2, MAX_NODES, "gnp n")?;
            if !(p > 0.0 && p <= 1.0 && p.is_finite()) {
                return Err(SpecError::OutOfRange {
                    at: "$.graph.p".into(),
                    detail: format!("p must be in (0, 1], got {p}"),
                });
            }
            if p * (n as f64 - 1.0) < 2.0 {
                return Err(SpecError::OutOfRange {
                    at: "$.graph.p".into(),
                    detail: "p(n-1) < 2: too sparse for the connected sampler".into(),
                });
            }
        }
        GraphSpec::Grid { rows, cols } => {
            range("$.graph.rows", rows, 2, MAX_NODES, "grid rows")?;
            range("$.graph.cols", cols, 2, MAX_NODES, "grid cols")?;
            range("$.graph.rows", rows * cols, 4, MAX_NODES, "grid nodes")?;
        }
        GraphSpec::Torus { rows, cols } => {
            range("$.graph.rows", rows, 3, MAX_NODES, "torus rows")?;
            range("$.graph.cols", cols, 3, MAX_NODES, "torus cols")?;
            range("$.graph.rows", rows * cols, 9, MAX_NODES, "torus nodes")?;
        }
        GraphSpec::PowerLaw { n, attach, .. } => {
            range("$.graph.attach", attach, 1, 64, "power-law attach")?;
            range("$.graph.n", n, attach + 2, MAX_NODES, "power-law n")?;
        }
        GraphSpec::ClassG { parameter } => {
            range("$.graph.parameter", parameter, 1, 128, "class-g parameter")?
        }
    }
    Ok(())
}

fn graph_value(graph: &GraphSpec) -> Value {
    let num = |x: usize| Value::Num(x as f64);
    let seed = |s: u64| Value::Num(s as f64);
    let fields = match graph {
        GraphSpec::Sparse { n, seed: s } => vec![
            ("family".into(), Value::Str("sparse".into())),
            ("n".into(), num(*n)),
            ("seed".into(), seed(*s)),
        ],
        GraphSpec::Complete { n } => vec![
            ("family".into(), Value::Str("complete".into())),
            ("n".into(), num(*n)),
        ],
        GraphSpec::Gnp { n, p, seed: s } => vec![
            ("family".into(), Value::Str("gnp".into())),
            ("n".into(), num(*n)),
            ("p".into(), Value::Num(*p)),
            ("seed".into(), seed(*s)),
        ],
        GraphSpec::Grid { rows, cols } => vec![
            ("family".into(), Value::Str("grid".into())),
            ("rows".into(), num(*rows)),
            ("cols".into(), num(*cols)),
        ],
        GraphSpec::Torus { rows, cols } => vec![
            ("family".into(), Value::Str("torus".into())),
            ("rows".into(), num(*rows)),
            ("cols".into(), num(*cols)),
        ],
        GraphSpec::PowerLaw { n, attach, seed: s } => vec![
            ("family".into(), Value::Str("power-law".into())),
            ("n".into(), num(*n)),
            ("attach".into(), num(*attach)),
            ("seed".into(), seed(*s)),
        ],
        GraphSpec::ClassG { parameter } => vec![
            ("family".into(), Value::Str("class-g".into())),
            ("parameter".into(), num(*parameter)),
        ],
    };
    Value::Obj(fields)
}

fn parse_protocol(at: &str, value: &Value) -> Result<ProtocolSpec, SpecError> {
    let mut f = Fields::new(at, value)?;
    let kind = as_str(&f.path("kind"), &f.require("kind")?)?;
    let protocol =
        match kind.as_str() {
            "flooding" => ProtocolSpec::Flooding,
            "dfs-rank" => ProtocolSpec::DfsRank,
            "fast-wakeup" => ProtocolSpec::FastWakeUp,
            "gossip" => ProtocolSpec::Gossip,
            "nih" => ProtocolSpec::Nih,
            "cor1" => ProtocolSpec::Cor1,
            "thm5a" => ProtocolSpec::Thm5a,
            "thm5b" => ProtocolSpec::Thm5b,
            "thm6" => ProtocolSpec::Thm6 {
                k: as_uint(&f.path("k"), &f.require("k")?, 64)? as usize,
            },
            "cor2" => ProtocolSpec::Cor2,
            other => return Err(SpecError::UnknownVariant {
                at: f.path("kind"),
                value: other.to_string(),
                allowed:
                    "flooding, dfs-rank, fast-wakeup, gossip, nih, cor1, thm5a, thm5b, thm6, cor2",
            }),
        };
    f.finish()?;
    Ok(protocol)
}

fn protocol_value(protocol: &ProtocolSpec) -> Value {
    let mut fields = vec![(
        "kind".to_string(),
        Value::Str(protocol.kind_tag().to_string()),
    )];
    if let ProtocolSpec::Thm6 { k } = protocol {
        fields.push(("k".into(), Value::Num(*k as f64)));
    }
    Value::Obj(fields)
}

fn parse_wake(at: &str, value: &Value) -> Result<WakeSpec, SpecError> {
    let mut f = Fields::new(at, value)?;
    let kind = as_str(&f.path("kind"), &f.require("kind")?)?;
    let wake = match kind.as_str() {
        "single" => WakeSpec::Single {
            node: as_uint(&f.path("node"), &f.require("node")?, MAX_NODES as u64)? as usize,
        },
        "all" => WakeSpec::All,
        "staggered" => WakeSpec::Staggered {
            gap: as_f64(&f.path("gap"), &f.require("gap")?)?,
        },
        "pairs" => {
            let raw = f.require("pairs")?;
            let Value::Arr(items) = raw else {
                return Err(SpecError::WrongType {
                    at: f.path("pairs"),
                    expected: "an array of [node, time] pairs",
                });
            };
            let mut pairs = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let at = format!("{}[{}]", f.path("pairs"), i);
                let Value::Arr(pair) = item else {
                    return Err(SpecError::WrongType {
                        at,
                        expected: "a [node, time] pair",
                    });
                };
                if pair.len() != 2 {
                    return Err(SpecError::WrongType {
                        at,
                        expected: "a [node, time] pair",
                    });
                }
                let node = as_uint(&format!("{at}[0]"), &pair[0], MAX_NODES as u64)? as usize;
                let time = as_f64(&format!("{at}[1]"), &pair[1])?;
                pairs.push((node, time));
            }
            WakeSpec::Pairs { pairs }
        }
        "centers" => WakeSpec::Centers,
        other => {
            return Err(SpecError::UnknownVariant {
                at: f.path("kind"),
                value: other.to_string(),
                allowed: "single, all, staggered, pairs, centers",
            })
        }
    };
    f.finish()?;
    Ok(wake)
}

fn validate_wake(wake: &WakeSpec, n: usize) -> Result<(), SpecError> {
    match wake {
        WakeSpec::Single { node } => {
            if *node >= n {
                return Err(SpecError::OutOfRange {
                    at: "$.wake.node".into(),
                    detail: format!("node {node} outside 0..{n}"),
                });
            }
        }
        WakeSpec::All | WakeSpec::Centers => {}
        WakeSpec::Staggered { gap } => {
            if !gap.is_finite() || *gap <= 0.0 || *gap > 1e6 {
                return Err(SpecError::OutOfRange {
                    at: "$.wake.gap".into(),
                    detail: format!("gap must be in (0, 1e6], got {gap}"),
                });
            }
        }
        WakeSpec::Pairs { pairs } => {
            if pairs.is_empty() {
                return Err(SpecError::OutOfRange {
                    at: "$.wake.pairs".into(),
                    detail: "must list at least one wake event".into(),
                });
            }
            let mut last = 0.0f64;
            for (i, (node, time)) in pairs.iter().enumerate() {
                let at = format!("$.wake.pairs[{i}]");
                if *node >= n {
                    return Err(SpecError::OutOfRange {
                        at,
                        detail: format!("node {node} outside 0..{n}"),
                    });
                }
                if !time.is_finite() || *time < 0.0 || *time > 1e6 {
                    return Err(SpecError::OutOfRange {
                        at,
                        detail: format!("time must be in [0, 1e6], got {time}"),
                    });
                }
                if *time < last {
                    return Err(SpecError::OutOfRange {
                        at,
                        detail: "wake times must be non-decreasing".into(),
                    });
                }
                last = *time;
            }
        }
    }
    Ok(())
}

fn wake_value(wake: &WakeSpec) -> Value {
    let kind = |k: &str| ("kind".to_string(), Value::Str(k.to_string()));
    let fields = match wake {
        WakeSpec::Single { node } => {
            vec![kind("single"), ("node".into(), Value::Num(*node as f64))]
        }
        WakeSpec::All => vec![kind("all")],
        WakeSpec::Staggered { gap } => vec![kind("staggered"), ("gap".into(), Value::Num(*gap))],
        WakeSpec::Pairs { pairs } => vec![
            kind("pairs"),
            (
                "pairs".into(),
                Value::Arr(
                    pairs
                        .iter()
                        .map(|&(node, time)| {
                            Value::Arr(vec![Value::Num(node as f64), Value::Num(time)])
                        })
                        .collect(),
                ),
            ),
        ],
        WakeSpec::Centers => vec![kind("centers")],
    };
    Value::Obj(fields)
}

fn parse_delays(at: &str, value: &Value) -> Result<DelaySpec, SpecError> {
    let mut f = Fields::new(at, value)?;
    let kind = as_str(&f.path("kind"), &f.require("kind")?)?;
    let delays = match kind.as_str() {
        "unit" => DelaySpec::Unit,
        "random" => DelaySpec::Random {
            seed: as_uint(&f.path("seed"), &f.require("seed")?, MAX_SEED)?,
        },
        "adversarial" => DelaySpec::Adversarial {
            salt: as_uint(&f.path("salt"), &f.require("salt")?, MAX_SEED)?,
        },
        "fifo-worst" => DelaySpec::FifoWorst,
        "capped" => DelaySpec::Capped {
            inner: Box::new(parse_delays(&f.path("inner"), &f.require("inner")?)?),
            tau_ticks: as_uint(&f.path("tau_ticks"), &f.require("tau_ticks")?, u64::MAX)?,
        },
        other => {
            return Err(SpecError::UnknownVariant {
                at: f.path("kind"),
                value: other.to_string(),
                allowed: "unit, random, adversarial, fifo-worst, capped",
            })
        }
    };
    f.finish()?;
    Ok(delays)
}

fn validate_delays(delays: &DelaySpec) -> Result<(), SpecError> {
    if let DelaySpec::Capped { inner, tau_ticks } = delays {
        if !(1..=TICKS_PER_UNIT).contains(tau_ticks) {
            return Err(SpecError::OutOfRange {
                at: "$.delays.tau_ticks".into(),
                detail: format!("must be in 1..={TICKS_PER_UNIT}"),
            });
        }
        if matches!(**inner, DelaySpec::Capped { .. }) {
            return Err(SpecError::Incompatible {
                detail: "capped delays cannot nest".into(),
            });
        }
    }
    Ok(())
}

fn delays_value(delays: &DelaySpec) -> Value {
    let kind = |k: &str| ("kind".to_string(), Value::Str(k.to_string()));
    let fields = match delays {
        DelaySpec::Unit => vec![kind("unit")],
        DelaySpec::Random { seed } => {
            vec![kind("random"), ("seed".into(), Value::Num(*seed as f64))]
        }
        DelaySpec::Adversarial { salt } => {
            vec![
                kind("adversarial"),
                ("salt".into(), Value::Num(*salt as f64)),
            ]
        }
        DelaySpec::FifoWorst => vec![kind("fifo-worst")],
        DelaySpec::Capped { inner, tau_ticks } => vec![
            kind("capped"),
            ("inner".into(), delays_value(inner)),
            ("tau_ticks".into(), Value::Num(*tau_ticks as f64)),
        ],
    };
    Value::Obj(fields)
}

fn parse_engine(at: &str, value: &Value) -> Result<EngineSpec, SpecError> {
    let mut f = Fields::new(at, value)?;
    let engine = EngineSpec {
        seed: as_uint(&f.path("seed"), &f.require("seed")?, MAX_SEED)?,
        shards: as_uint(&f.path("shards"), &f.require("shards")?, 1 << 20)? as usize,
        audit: as_bool(&f.path("audit"), &f.require("audit")?)?,
    };
    f.finish()?;
    Ok(engine)
}

fn engine_value(engine: &EngineSpec) -> Value {
    Value::Obj(vec![
        ("seed".into(), Value::Num(engine.seed as f64)),
        ("shards".into(), Value::Num(engine.shards as f64)),
        ("audit".into(), Value::Bool(engine.audit)),
    ])
}

fn parse_report(at: &str, value: &Value) -> Result<ReportSpec, SpecError> {
    let mut f = Fields::new(at, value)?;
    let label = as_str(&f.path("label"), &f.require("label")?)?;
    let claim = as_str(&f.path("claim"), &f.require("claim")?)?;
    let experiments_title = as_str(
        &f.path("experiments_title"),
        &f.require("experiments_title")?,
    )?;
    let experiments_claim = as_str(
        &f.path("experiments_claim"),
        &f.require("experiments_claim")?,
    )?;
    let raw_sizes = f.require("sizes")?;
    let Value::Arr(items) = raw_sizes else {
        return Err(SpecError::WrongType {
            at: f.path("sizes"),
            expected: "an array of sizes",
        });
    };
    let mut sizes = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        sizes.push(as_uint(
            &format!("{}[{}]", f.path("sizes"), i),
            item,
            MAX_NODES as u64,
        )? as usize);
    }
    let obs = match f.take("obs") {
        Some(v) => Some(parse_obs_windows(&f.path("obs"), &v)?),
        None => None,
    };
    f.finish()?;
    Ok(ReportSpec {
        label,
        claim,
        experiments_title,
        experiments_claim,
        sizes,
        obs,
    })
}

fn parse_obs_windows(at: &str, value: &Value) -> Result<ObsWindowSpec, SpecError> {
    let mut f = Fields::new(at, value)?;
    let mode = as_str(&f.path("mode"), &f.require("mode")?)?;
    let spec = match mode.as_str() {
        "log2" => ObsWindowSpec::Log2,
        "linear" => ObsWindowSpec::Linear {
            // 2^32 keeps the width exactly representable through the f64
            // carrier, like seeds.
            width: as_uint(&f.path("width"), &f.require("width")?, 1 << 32)?,
        },
        other => {
            return Err(SpecError::UnknownVariant {
                at: f.path("mode"),
                value: other.to_string(),
                allowed: "log2, linear",
            })
        }
    };
    f.finish()?;
    Ok(spec)
}

fn report_value(report: &ReportSpec) -> Value {
    let mut out = vec![
        ("label".into(), Value::Str(report.label.clone())),
        ("claim".into(), Value::Str(report.claim.clone())),
        (
            "experiments_title".into(),
            Value::Str(report.experiments_title.clone()),
        ),
        (
            "experiments_claim".into(),
            Value::Str(report.experiments_claim.clone()),
        ),
        (
            "sizes".into(),
            Value::Arr(report.sizes.iter().map(|&s| Value::Num(s as f64)).collect()),
        ),
    ];
    if let Some(obs) = &report.obs {
        let fields = match obs {
            ObsWindowSpec::Log2 => vec![("mode".to_string(), Value::Str("log2".into()))],
            ObsWindowSpec::Linear { width } => vec![
                ("mode".to_string(), Value::Str("linear".into())),
                ("width".to_string(), Value::Num(*width as f64)),
            ],
        };
        out.push(("obs".into(), Value::Obj(fields)));
    }
    Value::Obj(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> String {
        r#"{
  "version": 1,
  "name": "flood-demo",
  "graph": {"family": "sparse", "n": 16, "seed": 7},
  "protocol": {"kind": "flooding"},
  "wake": {"kind": "single", "node": 0},
  "delays": {"kind": "unit"},
  "engine": {"seed": 7, "shards": 1, "audit": true}
}"#
        .to_string()
    }

    #[test]
    fn parses_and_round_trips() {
        let spec = ScenarioSpec::parse(&minimal()).unwrap();
        assert_eq!(spec.name, "flood-demo");
        assert_eq!(spec.graph.node_count(), 16);
        let canon = spec.to_canonical_json();
        let reparsed = ScenarioSpec::parse(&canon).unwrap();
        assert_eq!(spec, reparsed);
        assert_eq!(reparsed.to_canonical_json(), canon);
    }

    #[test]
    fn rejects_unknown_fields_everywhere() {
        let doc = minimal().replace("\"shards\": 1", "\"shards\": 1, \"bogus\": 2");
        let err = ScenarioSpec::parse(&doc).unwrap_err();
        assert_eq!(
            err,
            SpecError::UnknownField {
                at: "$.engine".into(),
                field: "bogus".into()
            }
        );
        let doc = minimal().replace("\"version\": 1,", "\"version\": 1, \"extra\": null,");
        assert!(matches!(
            ScenarioSpec::parse(&doc).unwrap_err(),
            SpecError::UnknownField { .. }
        ));
    }

    #[test]
    fn rejects_wrong_version_and_types() {
        let doc = minimal().replace("\"version\": 1", "\"version\": 2");
        assert_eq!(
            ScenarioSpec::parse(&doc).unwrap_err(),
            SpecError::UnsupportedVersion { found: 2 }
        );
        let doc = minimal().replace("\"seed\": 7, \"shards\"", "\"seed\": \"7\", \"shards\"");
        assert!(matches!(
            ScenarioSpec::parse(&doc).unwrap_err(),
            SpecError::WrongType { .. }
        ));
        let doc = minimal().replace("\"n\": 16", "\"n\": 16.5");
        assert!(matches!(
            ScenarioSpec::parse(&doc).unwrap_err(),
            SpecError::OutOfRange { .. }
        ));
    }

    #[test]
    fn range_and_compat_validation() {
        // Sparse n below 8 would push the edge probability above 1.
        let doc = minimal().replace("\"n\": 16", "\"n\": 4");
        assert!(matches!(
            ScenarioSpec::parse(&doc).unwrap_err(),
            SpecError::OutOfRange { .. }
        ));
        // Wake node out of range.
        let doc = minimal().replace("\"node\": 0", "\"node\": 16");
        assert!(matches!(
            ScenarioSpec::parse(&doc).unwrap_err(),
            SpecError::OutOfRange { .. }
        ));
        // Sync protocol with non-unit delays.
        let doc = minimal()
            .replace("\"kind\": \"flooding\"", "\"kind\": \"fast-wakeup\"")
            .replace(
                "\"delays\": {\"kind\": \"unit\"}",
                "\"delays\": {\"kind\": \"random\", \"seed\": 3}",
            );
        assert!(matches!(
            ScenarioSpec::parse(&doc).unwrap_err(),
            SpecError::Incompatible { .. }
        ));
        // Nih off class-g.
        let doc = minimal().replace("\"kind\": \"flooding\"", "\"kind\": \"nih\"");
        assert!(matches!(
            ScenarioSpec::parse(&doc).unwrap_err(),
            SpecError::Incompatible { .. }
        ));
    }

    #[test]
    fn capped_delays_validate() {
        let doc = minimal().replace(
            "\"delays\": {\"kind\": \"unit\"}",
            "\"delays\": {\"kind\": \"capped\", \"inner\": {\"kind\": \"random\", \"seed\": 5}, \"tau_ticks\": 3}",
        );
        let spec = ScenarioSpec::parse(&doc).unwrap();
        assert_eq!(spec.delays.max_delay_ticks(), 3);
        let doc = doc.replace("\"tau_ticks\": 3", "\"tau_ticks\": 0");
        assert!(matches!(
            ScenarioSpec::parse(&doc).unwrap_err(),
            SpecError::OutOfRange { .. }
        ));
        let doc = minimal().replace(
            "\"delays\": {\"kind\": \"unit\"}",
            "\"delays\": {\"kind\": \"capped\", \"inner\": {\"kind\": \"capped\", \"inner\": {\"kind\": \"unit\"}, \"tau_ticks\": 2}, \"tau_ticks\": 3}",
        );
        assert!(matches!(
            ScenarioSpec::parse(&doc).unwrap_err(),
            SpecError::Incompatible { .. }
        ));
    }

    #[test]
    fn pairs_wake_round_trips_fractional_times() {
        let doc = minimal().replace(
            "\"wake\": {\"kind\": \"single\", \"node\": 0}",
            "\"wake\": {\"kind\": \"pairs\", \"pairs\": [[0, 0], [5, 1.25], [11, 2.5]]}",
        );
        let spec = ScenarioSpec::parse(&doc).unwrap();
        let WakeSpec::Pairs { pairs } = &spec.wake else {
            panic!("expected pairs")
        };
        assert_eq!(pairs[1], (5, 1.25));
        let canon = spec.to_canonical_json();
        assert_eq!(ScenarioSpec::parse(&canon).unwrap(), spec);
        // Non-monotone times are rejected.
        let doc = doc.replace("[5, 1.25], [11, 2.5]", "[5, 2.5], [11, 1.25]");
        assert!(matches!(
            ScenarioSpec::parse(&doc).unwrap_err(),
            SpecError::OutOfRange { .. }
        ));
    }

    /// `minimal()` with a report block whose `obs` value is the given JSON.
    fn with_report_obs(obs: &str) -> String {
        minimal().replace(
            "\"engine\": {\"seed\": 7, \"shards\": 1, \"audit\": true}",
            &format!(
                "\"engine\": {{\"seed\": 7, \"shards\": 1, \"audit\": true}},\n  \
                 \"report\": {{\"label\": \"l\", \"claim\": \"c\", \
                 \"experiments_title\": \"t\", \"experiments_claim\": \"e\", \
                 \"sizes\": [16], \"obs\": {obs}}}"
            ),
        )
    }

    #[test]
    fn report_obs_window_configs_round_trip() {
        let spec = ScenarioSpec::parse(&with_report_obs("{\"mode\": \"log2\"}")).unwrap();
        assert_eq!(spec.report.as_ref().unwrap().obs, Some(ObsWindowSpec::Log2));
        let canon = spec.to_canonical_json();
        assert_eq!(ScenarioSpec::parse(&canon).unwrap(), spec);
        assert_eq!(
            ScenarioSpec::parse(&canon).unwrap().to_canonical_json(),
            canon
        );

        let spec =
            ScenarioSpec::parse(&with_report_obs("{\"mode\": \"linear\", \"width\": 64}")).unwrap();
        assert_eq!(
            spec.report.as_ref().unwrap().obs,
            Some(ObsWindowSpec::Linear { width: 64 })
        );
        let canon = spec.to_canonical_json();
        assert_eq!(ScenarioSpec::parse(&canon).unwrap(), spec);

        // Absent obs stays absent (and the default window layout applies).
        let doc =
            with_report_obs("{\"mode\": \"log2\"}").replace(", \"obs\": {\"mode\": \"log2\"}", "");
        let spec = ScenarioSpec::parse(&doc).unwrap();
        assert_eq!(spec.report.as_ref().unwrap().obs, None);
        assert!(!spec.to_canonical_json().contains("\"obs\""));
    }

    #[test]
    fn report_obs_rejects_malformed_configs() {
        // Unknown mode.
        assert_eq!(
            ScenarioSpec::parse(&with_report_obs("{\"mode\": \"fib\"}")).unwrap_err(),
            SpecError::UnknownVariant {
                at: "$.report.obs.mode".into(),
                value: "fib".into(),
                allowed: "log2, linear",
            }
        );
        // Linear without a width.
        assert_eq!(
            ScenarioSpec::parse(&with_report_obs("{\"mode\": \"linear\"}")).unwrap_err(),
            SpecError::MissingField {
                at: "$.report.obs".into(),
                field: "width".into(),
            }
        );
        // Extra keys are rejected like everywhere else in the schema.
        assert_eq!(
            ScenarioSpec::parse(&with_report_obs("{\"mode\": \"log2\", \"stride\": 4}"))
                .unwrap_err(),
            SpecError::UnknownField {
                at: "$.report.obs".into(),
                field: "stride".into(),
            }
        );
        // Zero-width linear windows never tick over.
        assert_eq!(
            ScenarioSpec::parse(&with_report_obs("{\"mode\": \"linear\", \"width\": 0}"))
                .unwrap_err(),
            SpecError::OutOfRange {
                at: "$.report.obs.width".into(),
                detail: "linear window width must be at least 1 tick".into(),
            }
        );
        // Widths beyond 2^32 lose f64 exactness and are out of range.
        assert!(matches!(
            ScenarioSpec::parse(&with_report_obs(
                "{\"mode\": \"linear\", \"width\": 4294967297}"
            ))
            .unwrap_err(),
            SpecError::OutOfRange { .. }
        ));
    }
}
