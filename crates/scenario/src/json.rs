//! A strict, dependency-free JSON codec for scenario specs.
//!
//! The same philosophy as the audit JSONL layer (`wakeup_sim::audit`): the
//! writer emits exactly one canonical byte form, and the parser accepts
//! standard JSON but rejects everything a hand-edited spec could silently
//! get wrong — duplicate keys, trailing garbage, malformed escapes, numbers
//! that lose precision. Parsing then canonically re-serializing is the
//! identity on canonical input, which is what lets the corpus be checked in
//! and byte-diffed.
//!
//! Numbers are carried as `f64` with one canonical rendering: integral
//! values inside the 2⁵³ exact range print without a fraction (`2`, not
//! `2.0`), everything else uses Rust's shortest round-trip float display.
//! Spec validation separately rejects fields whose values cannot be exact
//! (seeds above 2³², say), so no scenario parameter ever passes through a
//! lossy representation.

use std::fmt;

/// A parsed JSON value. Object keys keep their source order — the canonical
/// writer re-orders them per the spec schema, not here.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source key order, duplicates rejected at parse time.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// A parse failure with the byte offset it happened at.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byte {}: {}", self.offset, self.detail)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, detail: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            detail: detail.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected literal {text:?}")))
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key_offset = self.pos;
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(JsonError {
                    offset: key_offset,
                    detail: format!("duplicate key {key:?}"),
                });
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy a raw UTF-8 run (anything below a quote, backslash, or
            // control byte) in one slice.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is a &str, so any byte run between structural
                // characters is valid UTF-8.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf-8"));
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unfinished escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                // A high surrogate must be followed by an
                                // escaped low surrogate.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(ch);
                        }
                        other => {
                            return Err(self.err(format!("invalid escape \\{}", other as char)))
                        }
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("unfinished \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            cp = cp * 16 + digit;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a lone 0 or a nonzero-led digit run (JSON forbids
        // leading zeros).
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.err("leading zero in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected a digit after '.'"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected a digit in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let value: f64 = text.parse().map_err(|_| JsonError {
            offset: start,
            detail: format!("unparseable number {text:?}"),
        })?;
        if !value.is_finite() {
            return Err(JsonError {
                offset: start,
                detail: format!("number {text:?} overflows f64"),
            });
        }
        Ok(Value::Num(value))
    }
}

/// Writes `value` in the canonical pretty form: two-space indentation,
/// one object field per line, arrays inline when every element is a scalar
/// and one-element-per-line otherwise, and a trailing newline. Key order is
/// whatever the `Value` carries — spec serialization builds values in
/// schema order before calling this.
pub fn canonical(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, 0);
    out.push('\n');
    out
}

fn write_value(out: &mut String, value: &Value, indent: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(x) => write_num(out, *x),
        Value::Str(s) => write_str(out, s),
        Value::Arr(items) => write_arr(out, items, indent),
        Value::Obj(fields) => write_obj(out, fields, indent),
    }
}

/// Exact integers print without a fraction; everything else uses the
/// shortest round-trip rendering.
fn write_num(out: &mut String, x: f64) {
    const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
    if x.fract() == 0.0 && x.abs() < EXACT {
        out.push_str(&format!("{}", x as i64));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn is_scalar(v: &Value) -> bool {
    matches!(
        v,
        Value::Null | Value::Bool(_) | Value::Num(_) | Value::Str(_)
    )
}

fn write_arr(out: &mut String, items: &[Value], indent: usize) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    if items.iter().all(is_scalar) {
        out.push('[');
        for (i, item) in items.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_value(out, item, indent);
        }
        out.push(']');
        return;
    }
    out.push_str("[\n");
    let pad = "  ".repeat(indent + 1);
    for (i, item) in items.iter().enumerate() {
        out.push_str(&pad);
        write_value(out, item, indent + 1);
        if i + 1 < items.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(&"  ".repeat(indent));
    out.push(']');
}

fn write_obj(out: &mut String, fields: &[(String, Value)], indent: usize) {
    if fields.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push_str("{\n");
    let pad = "  ".repeat(indent + 1);
    for (i, (key, value)) in fields.iter().enumerate() {
        out.push_str(&pad);
        write_str(out, key);
        out.push_str(": ");
        write_value(out, value, indent + 1);
        if i + 1 < fields.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(&"  ".repeat(indent));
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(parse("-1.25e2").unwrap(), Value::Num(-125.0));
        assert_eq!(parse("\"hé\\n\"").unwrap(), Value::Str("hé\n".into()));
    }

    #[test]
    fn rejects_duplicate_keys_and_trailing_garbage() {
        let err = parse("{\"a\": 1, \"a\": 2}").unwrap_err();
        assert!(err.detail.contains("duplicate key"), "{err}");
        let err = parse("{} x").unwrap_err();
        assert!(err.detail.contains("trailing"), "{err}");
        assert!(parse("01").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("\"\\q\"").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::Str("😀".into())
        );
        assert!(parse("\"\\ud83d\"").is_err());
    }

    #[test]
    fn canonical_is_stable_under_reparse() {
        let doc = "{\"b\": [1, 2.5, \"x\"], \"a\": {\"nested\": [[0, 1.25], [3, 2]]}}";
        let v = parse(doc).unwrap();
        let c1 = canonical(&v);
        let v2 = parse(&c1).unwrap();
        assert_eq!(v, v2);
        assert_eq!(canonical(&v2), c1);
    }

    #[test]
    fn integral_floats_print_as_integers() {
        let mut s = String::new();
        write_num(&mut s, 2.0);
        assert_eq!(s, "2");
        s.clear();
        write_num(&mut s, 1.25);
        assert_eq!(s, "1.25");
    }

    #[test]
    fn unicode_passes_through_raw() {
        let v = Value::Str("ρ_awk Θ(m) 𝒢ₖ".into());
        let c = canonical(&v);
        assert_eq!(c, "\"ρ_awk Θ(m) 𝒢ₖ\"\n");
        assert_eq!(parse(c.trim()).unwrap(), v);
    }
}
