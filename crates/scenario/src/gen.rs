//! Seeded-deterministic generator of random **valid** scenario specs — the
//! input side of the `wakeup fuzz` conformance loop.
//!
//! Spec `i` of generator seed `s` is a pure function of `(s, i)`: the
//! generator forks one RNG stream per index, so the stream is identical
//! across machines, thread counts, and which indices a caller happens to
//! draw. Sizes are kept small (tens of nodes) — the fuzz loop's budget goes
//! to breadth across the {family × protocol × wake × delay} grid, not to
//! big graphs.

use crate::spec::{DelaySpec, EngineSpec, GraphSpec, ProtocolSpec, ScenarioSpec, WakeSpec};
use wakeup_graph::rng::Xoshiro256;
use wakeup_sim::TICKS_PER_UNIT;

/// The deterministic spec generator.
#[derive(Debug, Clone)]
pub struct SpecGen {
    seed: u64,
}

impl SpecGen {
    /// Creates a generator; every spec it yields is a pure function of
    /// `(seed, index)`.
    pub fn new(seed: u64) -> SpecGen {
        SpecGen { seed }
    }

    /// The `index`-th spec of this generator's stream. Always valid:
    /// [`crate::spec::ScenarioSpec::validate`] is asserted before returning.
    pub fn spec(&self, index: u64) -> ScenarioSpec {
        let mut rng = Xoshiro256::seed_from(self.seed).fork(index);
        let graph = gen_graph(&mut rng);
        let protocol = gen_protocol(&mut rng, &graph);
        let wake = gen_wake(&mut rng, &graph, protocol);
        let delays = if protocol.is_sync() {
            DelaySpec::Unit
        } else {
            gen_delays(&mut rng)
        };
        let spec = ScenarioSpec {
            name: format!("fuzz-{index:04}"),
            graph,
            protocol,
            wake,
            delays,
            engine: EngineSpec {
                seed: rng.next_below(1 << 32),
                shards: 1,
                audit: true,
            },
            report: None,
        };
        spec.validate()
            .expect("the generator must only emit valid specs");
        spec
    }

    /// The first `count` specs of the stream.
    pub fn take(&self, count: u64) -> Vec<ScenarioSpec> {
        (0..count).map(|i| self.spec(i)).collect()
    }
}

fn gen_graph(rng: &mut Xoshiro256) -> GraphSpec {
    match rng.index(7) {
        0 => GraphSpec::Sparse {
            n: 8 + rng.index(33),
            seed: rng.next_below(1 << 32),
        },
        1 => GraphSpec::Complete {
            n: 4 + rng.index(13),
        },
        2 => {
            let n = 8 + rng.index(25);
            // p(n-1) >= 2 keeps the connected sampler's patch count small;
            // sample the average degree in [2, 6].
            let degree = 2.0 + 4.0 * rng.unit_f64();
            let p = (degree / (n as f64 - 1.0)).min(1.0);
            GraphSpec::Gnp {
                n,
                p,
                seed: rng.next_below(1 << 32),
            }
        }
        3 => GraphSpec::Grid {
            rows: 2 + rng.index(5),
            cols: 2 + rng.index(5),
        },
        4 => GraphSpec::Torus {
            rows: 3 + rng.index(4),
            cols: 3 + rng.index(4),
        },
        5 => GraphSpec::PowerLaw {
            n: 10 + rng.index(31),
            attach: 1 + rng.index(3),
            seed: rng.next_below(1 << 32),
        },
        _ => GraphSpec::ClassG {
            parameter: 4 + rng.index(5),
        },
    }
}

fn gen_protocol(rng: &mut Xoshiro256, graph: &GraphSpec) -> ProtocolSpec {
    let pool: &[ProtocolSpec] = if matches!(graph, GraphSpec::ClassG { .. }) {
        // Nih is only defined here; keep it over-represented so the
        // degree-1 response path stays under fuzz pressure.
        &[
            ProtocolSpec::Flooding,
            ProtocolSpec::Nih,
            ProtocolSpec::Nih,
            ProtocolSpec::DfsRank,
            ProtocolSpec::Thm5b,
        ]
    } else {
        &[
            ProtocolSpec::Flooding,
            ProtocolSpec::DfsRank,
            ProtocolSpec::FastWakeUp,
            ProtocolSpec::Gossip,
            ProtocolSpec::Cor1,
            ProtocolSpec::Thm5a,
            ProtocolSpec::Thm5b,
            ProtocolSpec::Thm6 { k: 2 },
            ProtocolSpec::Thm6 { k: 3 },
            ProtocolSpec::Cor2,
        ]
    };
    pool[rng.index(pool.len())]
}

fn gen_wake(rng: &mut Xoshiro256, graph: &GraphSpec, protocol: ProtocolSpec) -> WakeSpec {
    let n = graph.node_count();
    let centers_ok = matches!(graph, GraphSpec::ClassG { .. });
    match rng.index(if centers_ok { 5 } else { 4 }) {
        0 => WakeSpec::Single { node: rng.index(n) },
        1 => WakeSpec::All,
        2 => WakeSpec::Staggered {
            // Quarter-τ steps in (0, 4]; integral gaps stay common so the
            // lockstep-eligible slice of the stream is non-trivial.
            gap: (1 + rng.index(16)) as f64 * 0.25,
        },
        3 => {
            let count = 1 + rng.index(4.min(n));
            let nodes = rng.sample_distinct(n, count);
            let mut time = 0.0;
            let pairs = nodes
                .into_iter()
                .map(|node| {
                    let pair = (node, time);
                    time += rng.index(5) as f64 * 0.5;
                    pair
                })
                .collect();
            let _ = protocol;
            WakeSpec::Pairs { pairs }
        }
        _ => WakeSpec::Centers,
    }
}

fn gen_delays(rng: &mut Xoshiro256) -> DelaySpec {
    let base = |rng: &mut Xoshiro256, include_unit: bool| match rng.index(if include_unit {
        4
    } else {
        3
    }) {
        0 => DelaySpec::Random {
            seed: rng.next_below(1 << 32),
        },
        1 => DelaySpec::Adversarial {
            salt: rng.next_below(1 << 32),
        },
        2 => DelaySpec::FifoWorst,
        _ => DelaySpec::Unit,
    };
    if rng.bernoulli(0.25) {
        let tau_ticks = match rng.index(3) {
            0 => 1,
            1 => 1 + rng.next_below(16),
            _ => 1 + rng.next_below(TICKS_PER_UNIT),
        };
        DelaySpec::Capped {
            inner: Box::new(base(rng, false)),
            tau_ticks,
        }
    } else {
        base(rng, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_generated_spec_is_valid() {
        let gen = SpecGen::new(1);
        for i in 0..200 {
            let spec = gen.spec(i);
            spec.validate().unwrap();
            // And survives a canonical round-trip.
            let reparsed = ScenarioSpec::parse(&spec.to_canonical_json()).unwrap();
            assert_eq!(reparsed, spec);
        }
    }

    #[test]
    fn stream_is_deterministic_and_index_local() {
        let a = SpecGen::new(42).take(50);
        let b = SpecGen::new(42).take(50);
        assert_eq!(a, b);
        // Drawing an index directly matches its position in the stream.
        assert_eq!(SpecGen::new(42).spec(37), a[37].clone());
        // A different seed produces a different stream.
        assert_ne!(SpecGen::new(43).take(50), a);
    }

    #[test]
    fn stream_covers_the_grid() {
        let specs = SpecGen::new(7).take(300);
        let sync = specs.iter().filter(|s| s.protocol.is_sync()).count();
        let schemes = specs.iter().filter(|s| s.protocol.is_scheme()).count();
        let capped = specs
            .iter()
            .filter(|s| matches!(s.delays, DelaySpec::Capped { .. }))
            .count();
        let class_g = specs
            .iter()
            .filter(|s| matches!(s.graph, GraphSpec::ClassG { .. }))
            .count();
        assert!(sync > 10, "sync protocols appear ({sync})");
        assert!(schemes > 30, "advising schemes appear ({schemes})");
        assert!(capped > 20, "capped delays appear ({capped})");
        assert!(class_g > 10, "class-g graphs appear ({class_g})");
    }
}
