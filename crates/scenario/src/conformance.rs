//! The per-spec conformance battery behind `wakeup fuzz`.
//!
//! Every scenario — corpus file or generated — runs through the same
//! differential checks the fixed `audit` harness applies to its hardcoded
//! workloads:
//!
//! 1. **invariants** — the audited run through [`Auditor::standard`], with
//!    the scope tightened to the spec's τ cap and, for advising schemes,
//!    its CONGEST channel and advice lengths;
//! 2. **batch-vs-per-message** — [`PerMessage`] (async) / [`PerRound`]
//!    (sync) must reproduce the batched fast path byte-for-byte, digests
//!    and audit-trace bytes both;
//! 3. **reset-vs-fresh** — a dirtied engine after `reset()` must match a
//!    freshly constructed one exactly;
//! 4. **sharded-vs-serial** — when the spec's delay strategy forks, shard
//!    count 2 must agree with serial on the digest and the byte-exact
//!    observability snapshot;
//! 5. **lockstep-vs-sync** — a unit-delay flooding spec with round-aligned
//!    wake times is a synchronous execution and must agree with the sync
//!    engine under [`Lockstep`] (digests; the engines schedule internal
//!    events differently, so traces are not byte-comparable).
//!
//! A failing spec is shrunk by [`minimize`]: greedy descent over graph
//! size, delay strategy, wake schedule, and options, keeping each
//! candidate only while the battery still fails.

use std::sync::Arc;

use crate::run::{
    async_config, build_delays, build_network, build_schedule, dispatch_async, dispatch_sync,
    sync_config, AsyncDispatch, SyncDispatch,
};
use crate::spec::{DelaySpec, GraphSpec, ProtocolSpec, ScenarioSpec, WakeSpec};
use wakeup_core::flooding::FloodAsync;
use wakeup_sim::adversary::{DelayStrategy, RandomDelay, WakeSchedule};
use wakeup_sim::audit::{AuditLog, AuditScope, Auditor};
use wakeup_sim::{
    AsyncConfig, AsyncEngine, AsyncProtocol, BitStr, ChannelModel, Lockstep, Network, PerMessage,
    PerRound, RunDigest, RunReport, SyncConfig, SyncEngine, SyncProtocol,
};

/// Audit-log event capacity for every audited run — far above what the
/// fuzz-scale workloads produce, so logs never truncate.
pub const AUDIT_CAP: usize = 1 << 20;

/// Outcome of one conformance check.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Check name (`invariants`, `batch-vs-per-message`, …).
    pub name: String,
    /// Whether the check passed.
    pub passed: bool,
    /// Failure detail (empty on pass).
    pub detail: String,
    /// Audit-trace artifacts to dump on failure, as `(tag, jsonl)` pairs.
    pub artifacts: Vec<(String, String)>,
}

impl CheckReport {
    fn pass(name: &str) -> CheckReport {
        CheckReport {
            name: name.to_string(),
            passed: true,
            detail: String::new(),
            artifacts: Vec::new(),
        }
    }

    fn fail(name: &str, detail: String, artifacts: Vec<(String, String)>) -> CheckReport {
        CheckReport {
            name: name.to_string(),
            passed: false,
            detail,
            artifacts,
        }
    }
}

fn log(report: &RunReport) -> &AuditLog {
    report
        .audit_log
        .as_ref()
        .expect("engine was configured with audit_capacity")
}

fn equivalent(name: &str, left: &RunReport, right: &RunReport, traces_too: bool) -> CheckReport {
    let diffs = RunDigest::of(left).diff(&RunDigest::of(right));
    if !diffs.is_empty() {
        return CheckReport::fail(
            name,
            format!(
                "{} digest field(s) differ; first: {}",
                diffs.len(),
                diffs[0]
            ),
            vec![
                ("left".into(), log(left).to_jsonl()),
                ("right".into(), log(right).to_jsonl()),
            ],
        );
    }
    if traces_too {
        let (la, lb) = (log(left), log(right));
        if la.to_jsonl() != lb.to_jsonl() {
            return CheckReport::fail(
                name,
                format!(
                    "digests agree but traces differ ({} vs {} events)",
                    la.len(),
                    lb.len()
                ),
                vec![
                    ("left".into(), la.to_jsonl()),
                    ("right".into(), lb.to_jsonl()),
                ],
            );
        }
    }
    CheckReport::pass(name)
}

fn equivalent_snapshots(name: &str, left: &RunReport, right: &RunReport) -> CheckReport {
    let diffs = RunDigest::of(left).diff(&RunDigest::of(right));
    if !diffs.is_empty() {
        return CheckReport::fail(
            name,
            format!(
                "{} digest field(s) differ; first: {}",
                diffs.len(),
                diffs[0]
            ),
            Vec::new(),
        );
    }
    if left.obs_snapshot().to_json() != right.obs_snapshot().to_json() {
        return CheckReport::fail(
            name,
            "digests agree but ObsSnapshot JSON differs".into(),
            Vec::new(),
        );
    }
    CheckReport::pass(name)
}

/// Whether the spec's wake schedule lands on whole-τ boundaries only (the
/// lockstep eligibility condition).
fn round_aligned(wake: &WakeSpec) -> bool {
    match wake {
        WakeSpec::Single { .. } | WakeSpec::All | WakeSpec::Centers => true,
        WakeSpec::Staggered { gap } => gap.fract() == 0.0,
        WakeSpec::Pairs { pairs } => pairs.iter().all(|&(_, t)| t.fract() == 0.0),
    }
}

struct AsyncBattery<'s> {
    spec: &'s ScenarioSpec,
    schedule: &'s WakeSchedule,
}

impl AsyncDispatch for AsyncBattery<'_> {
    type Out = Vec<CheckReport>;

    fn call<P: AsyncProtocol>(
        self,
        net: &Network,
        channel: ChannelModel,
        advice: Option<Arc<Vec<BitStr>>>,
    ) -> Vec<CheckReport> {
        let spec = self.spec;
        let schedule = self.schedule;
        let mut checks = Vec::new();
        let cfg = || AsyncConfig {
            audit_capacity: Some(AUDIT_CAP),
            ..async_config(spec, channel, advice.clone())
        };
        let run = |config: AsyncConfig| {
            let mut delays = build_delays(&spec.delays);
            AsyncEngine::<P>::new(net, config).run_with(schedule, &mut delays)
        };

        let base = run(cfg());

        // 1. Invariant battery over the audited trace.
        if spec.engine.audit {
            let mut scope = AuditScope::new(net)
                .with_channel(channel)
                .with_max_delay_ticks(spec.delays.max_delay_ticks())
                .with_completed(!base.truncated);
            if let Some(advice) = &advice {
                scope = scope.with_advice(advice);
            }
            let violations = Auditor::standard(scope).run(log(&base));
            checks.push(if violations.is_empty() {
                CheckReport::pass("invariants")
            } else {
                let first = &violations[0];
                CheckReport::fail(
                    "invariants",
                    format!(
                        "{} violation(s); first: [{}] {}",
                        violations.len(),
                        first.invariant,
                        first.detail
                    ),
                    vec![("violating".into(), log(&base).to_jsonl())],
                )
            });
        }

        // 2. Batched vs per-message delivery.
        let per_message = {
            let mut delays = build_delays(&spec.delays);
            AsyncEngine::<PerMessage<P>>::new(net, cfg()).run_with(schedule, &mut delays)
        };
        checks.push(equivalent(
            "batch-vs-per-message",
            &base,
            &per_message,
            true,
        ));

        // 3. reset() + rerun vs the fresh engine.
        let reused = {
            let mut engine = AsyncEngine::<P>::new(net, cfg());
            // Dirty every scratch structure with a different-seed run.
            engine.reset(spec.engine.seed ^ 0x5A5A);
            let _ = engine.run_mut(schedule, &mut RandomDelay::new(23));
            engine.reset(spec.engine.seed);
            let mut delays = build_delays(&spec.delays);
            engine.run_mut(schedule, &mut delays)
        };
        checks.push(equivalent("reset-vs-fresh", &base, &reused, true));

        // 4. Sharded vs serial (forkable strategies only; audit recording
        // forces the serial path, so this pairing uses plain configs).
        if build_delays(&spec.delays).fork().is_some() {
            let plain = |shards: usize| AsyncConfig {
                shards,
                ..async_config(spec, channel, advice.clone())
            };
            let serial = run(plain(1));
            let sharded = run(plain(2));
            checks.push(equivalent_snapshots("sharded-vs-serial", &serial, &sharded));
        }

        // 5. Async under the lockstep adversary vs the sync engine.
        if spec.protocol == ProtocolSpec::Flooding
            && spec.delays == DelaySpec::Unit
            && round_aligned(&spec.wake)
        {
            let sync = SyncEngine::<Lockstep<FloodAsync>>::new(
                net,
                SyncConfig {
                    audit_capacity: Some(AUDIT_CAP),
                    ..sync_config(spec)
                },
            )
            .run(schedule);
            checks.push(equivalent("async-vs-lockstep", &base, &sync, false));
        }

        checks
    }
}

struct SyncBattery<'s> {
    spec: &'s ScenarioSpec,
    schedule: &'s WakeSchedule,
}

impl SyncDispatch for SyncBattery<'_> {
    type Out = Vec<CheckReport>;

    fn call<P: SyncProtocol>(self, net: &Network) -> Vec<CheckReport> {
        let spec = self.spec;
        let schedule = self.schedule;
        let mut checks = Vec::new();
        let cfg = || SyncConfig {
            audit_capacity: Some(AUDIT_CAP),
            ..sync_config(spec)
        };

        let base = SyncEngine::<P>::new(net, cfg()).run(schedule);

        if spec.engine.audit {
            let scope = AuditScope::new(net).with_completed(!base.truncated);
            let violations = Auditor::standard(scope).run(log(&base));
            checks.push(if violations.is_empty() {
                CheckReport::pass("invariants")
            } else {
                let first = &violations[0];
                CheckReport::fail(
                    "invariants",
                    format!(
                        "{} violation(s); first: [{}] {}",
                        violations.len(),
                        first.invariant,
                        first.detail
                    ),
                    vec![("violating".into(), log(&base).to_jsonl())],
                )
            });
        }

        let per_round = SyncEngine::<PerRound<P>>::new(net, cfg()).run(schedule);
        checks.push(equivalent("batch-vs-per-round", &base, &per_round, true));

        let reused = {
            let mut engine = SyncEngine::<P>::new(net, cfg());
            engine.reset(spec.engine.seed ^ 0x5A5A);
            let _ = engine.run_mut(schedule);
            engine.reset(spec.engine.seed);
            engine.run_mut(schedule)
        };
        checks.push(equivalent("reset-vs-fresh", &base, &reused, true));

        let plain = |shards: usize| SyncConfig {
            shards,
            ..sync_config(spec)
        };
        let serial = SyncEngine::<P>::new(net, plain(1)).run(schedule);
        let sharded = SyncEngine::<P>::new(net, plain(2)).run(schedule);
        checks.push(equivalent_snapshots("sharded-vs-serial", &serial, &sharded));

        checks
    }
}

/// Runs the full conformance battery over one validated spec.
pub fn run_battery(spec: &ScenarioSpec) -> Vec<CheckReport> {
    let net = build_network(spec);
    run_battery_on(spec, &net)
}

/// As [`run_battery`], with a caller-provided network.
pub fn run_battery_on(spec: &ScenarioSpec, net: &Network) -> Vec<CheckReport> {
    let schedule = build_schedule(spec);
    if spec.protocol.is_sync() {
        dispatch_sync(
            spec,
            net,
            SyncBattery {
                spec,
                schedule: &schedule,
            },
        )
        .expect("sync protocol")
    } else {
        dispatch_async(
            spec,
            net,
            AsyncBattery {
                spec,
                schedule: &schedule,
            },
        )
        .expect("async protocol")
        .0
    }
}

/// Whether every check in the battery passes.
pub fn battery_passes(spec: &ScenarioSpec) -> bool {
    run_battery(spec).iter().all(|c| c.passed)
}

fn shrink_candidates(spec: &ScenarioSpec) -> Vec<ScenarioSpec> {
    let mut out = Vec::new();
    let mut push = |candidate: ScenarioSpec| {
        if candidate != *spec && candidate.validate().is_ok() {
            out.push(candidate);
        }
    };

    // Smaller graph, same family where possible.
    let shrunk_graph = match spec.graph {
        GraphSpec::Sparse { n, seed } if n > 8 => Some(GraphSpec::Sparse {
            n: (n / 2).max(8),
            seed,
        }),
        GraphSpec::Complete { n } if n > 2 => Some(GraphSpec::Complete { n: (n / 2).max(2) }),
        // Halving n can starve the connected sampler; fall back to sparse.
        GraphSpec::Gnp { n, seed, .. } => Some(GraphSpec::Sparse {
            n: (n / 2).max(8),
            seed,
        }),
        GraphSpec::Grid { rows, cols } if rows > 2 || cols > 2 => Some(GraphSpec::Grid {
            rows: rows.saturating_sub(1).max(2),
            cols: cols.saturating_sub(1).max(2),
        }),
        GraphSpec::Torus { rows, cols } if rows > 3 || cols > 3 => Some(GraphSpec::Torus {
            rows: rows.saturating_sub(1).max(3),
            cols: cols.saturating_sub(1).max(3),
        }),
        GraphSpec::PowerLaw { n, attach, seed } if n > attach + 2 => Some(GraphSpec::PowerLaw {
            n: (n / 2).max(attach + 2),
            attach,
            seed,
        }),
        GraphSpec::ClassG { parameter } if parameter > 1 => Some(GraphSpec::ClassG {
            parameter: parameter / 2,
        }),
        _ => None,
    };
    if let Some(graph) = shrunk_graph {
        let mut candidate = spec.clone();
        candidate.graph = graph;
        // A shrunk graph can orphan an out-of-range wake node.
        if let WakeSpec::Single { node } = &mut candidate.wake {
            *node = (*node).min(candidate.graph.node_count() - 1);
        }
        if let WakeSpec::Pairs { pairs } = &mut candidate.wake {
            let n = candidate.graph.node_count();
            pairs.retain(|&(node, _)| node < n);
            if pairs.is_empty() {
                pairs.push((0, 0.0));
            }
        }
        push(candidate);
    }

    // Simpler delays.
    match &spec.delays {
        DelaySpec::Unit => {}
        DelaySpec::Capped { inner, .. } => {
            let mut candidate = spec.clone();
            candidate.delays = (**inner).clone();
            push(candidate);
        }
        _ => {
            let mut candidate = spec.clone();
            candidate.delays = DelaySpec::Unit;
            push(candidate);
        }
    }

    // Simpler wake schedule.
    if spec.wake != (WakeSpec::Single { node: 0 }) {
        let mut candidate = spec.clone();
        candidate.wake = WakeSpec::Single { node: 0 };
        push(candidate);
    }

    // Fewer knobs.
    if spec.engine.shards != 1 {
        let mut candidate = spec.clone();
        candidate.engine.shards = 1;
        push(candidate);
    }
    if spec.report.is_some() {
        let mut candidate = spec.clone();
        candidate.report = None;
        push(candidate);
    }

    out
}

/// Greedily minimizes a battery-failing spec: repeatedly adopts the first
/// shrink candidate that still fails, until no candidate does. Returns the
/// spec unchanged if it does not fail in the first place.
pub fn minimize(spec: &ScenarioSpec) -> ScenarioSpec {
    let mut current = spec.clone();
    if battery_passes(&current) {
        return current;
    }
    // The candidate set strictly shrinks the workload, so descent is
    // bounded; the iteration cap is a belt on top of those suspenders.
    for _ in 0..64 {
        let Some(next) = shrink_candidates(&current)
            .into_iter()
            .find(|c| !battery_passes(c))
        else {
            break;
        };
        current = next;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::SpecGen;
    use crate::spec::EngineSpec;

    #[test]
    fn battery_passes_on_representative_specs() {
        // One per dispatch regime: plain async, scheme, sync, class-g Nih.
        for (i, spec) in [
            ScenarioSpec {
                name: "battery-flood".into(),
                graph: GraphSpec::Sparse { n: 16, seed: 7 },
                protocol: ProtocolSpec::Flooding,
                wake: WakeSpec::Pairs {
                    pairs: vec![(0, 0.0), (5, 1.25), (11, 2.5)],
                },
                delays: DelaySpec::Random { seed: 17 },
                engine: EngineSpec {
                    seed: 5,
                    shards: 1,
                    audit: true,
                },
                report: None,
            },
            ScenarioSpec {
                name: "battery-spanner".into(),
                graph: GraphSpec::Sparse { n: 32, seed: 7 },
                protocol: ProtocolSpec::Thm6 { k: 2 },
                wake: WakeSpec::Single { node: 0 },
                delays: DelaySpec::Unit,
                engine: EngineSpec {
                    seed: 4,
                    shards: 1,
                    audit: true,
                },
                report: None,
            },
            ScenarioSpec {
                name: "battery-fast-wakeup".into(),
                graph: GraphSpec::Complete { n: 12 },
                protocol: ProtocolSpec::FastWakeUp,
                wake: WakeSpec::All,
                delays: DelaySpec::Unit,
                engine: EngineSpec {
                    seed: 6,
                    shards: 1,
                    audit: true,
                },
                report: None,
            },
            ScenarioSpec {
                name: "battery-nih".into(),
                graph: GraphSpec::ClassG { parameter: 6 },
                protocol: ProtocolSpec::Nih,
                wake: WakeSpec::Centers,
                delays: DelaySpec::Unit,
                engine: EngineSpec {
                    seed: 2,
                    shards: 1,
                    audit: true,
                },
                report: None,
            },
        ]
        .into_iter()
        .enumerate()
        {
            spec.validate().unwrap();
            let checks = run_battery(&spec);
            assert!(!checks.is_empty(), "case {i} ran no checks");
            for check in &checks {
                assert!(
                    check.passed,
                    "case {i} ({}) failed {}: {}",
                    spec.name, check.name, check.detail
                );
            }
        }
    }

    #[test]
    fn lockstep_check_fires_for_eligible_specs() {
        let spec = ScenarioSpec {
            name: "battery-lockstep".into(),
            graph: GraphSpec::Torus { rows: 3, cols: 4 },
            protocol: ProtocolSpec::Flooding,
            wake: WakeSpec::Staggered { gap: 2.0 },
            delays: DelaySpec::Unit,
            engine: EngineSpec {
                seed: 3,
                shards: 1,
                audit: true,
            },
            report: None,
        };
        spec.validate().unwrap();
        let checks = run_battery(&spec);
        let lockstep = checks
            .iter()
            .find(|c| c.name == "async-vs-lockstep")
            .expect("unit-delay round-aligned flooding is lockstep-eligible");
        assert!(lockstep.passed, "{}", lockstep.detail);
        // A fractional-gap spec must skip the check.
        let mut frac = spec.clone();
        frac.wake = WakeSpec::Staggered { gap: 1.25 };
        assert!(run_battery(&frac)
            .iter()
            .all(|c| c.name != "async-vs-lockstep"));
    }

    #[test]
    fn generated_specs_pass_a_battery_slice() {
        // A fast slice of what `wakeup fuzz --seed 1` covers; the CI fuzz
        // job runs the full 50.
        let gen = SpecGen::new(1);
        for i in 0..6 {
            let spec = gen.spec(i);
            for check in run_battery(&spec) {
                assert!(
                    check.passed,
                    "spec {i} ({}) failed {}: {}",
                    spec.name, check.name, check.detail
                );
            }
        }
    }

    #[test]
    fn minimize_is_identity_on_passing_specs() {
        let spec = SpecGen::new(3).spec(0);
        assert_eq!(minimize(&spec), spec);
    }

    #[test]
    fn shrink_candidates_are_valid_and_smaller() {
        let gen = SpecGen::new(9);
        for i in 0..40 {
            let spec = gen.spec(i);
            for candidate in shrink_candidates(&spec) {
                candidate.validate().unwrap();
                assert!(
                    candidate.graph.node_count() <= spec.graph.node_count(),
                    "shrinking must not grow the graph"
                );
            }
        }
    }
}
