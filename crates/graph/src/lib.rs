//! Graph substrate for the adversarial wake-up reproduction.
//!
//! This crate provides everything the simulator and the wake-up algorithms
//! need to know about network topologies:
//!
//! * a compact, immutable [`Graph`] representation (CSR adjacency) with a
//!   validating [`GraphBuilder`],
//! * deterministic pseudo-random streams ([`rng`]) used by every randomized
//!   component in the workspace (so experiments reproduce bit-for-bit),
//! * standard generators ([`generators`]): paths, cycles, stars, complete and
//!   complete-bipartite graphs, grids, hypercubes, trees, G(n, p), random
//!   regular graphs, barbells and lollipops,
//! * the paper's lower-bound families ([`families`]): the KT0 class 𝒢 and the
//!   high-girth KT1 class 𝒢ₖ,
//! * graph algorithms ([`algo`]): BFS forests, DFS, connected components,
//!   exact diameter and girth, greedy (2k−1)-spanners, forest decompositions,
//!   and the paper's *awake distance* ρ_awk.
//!
//! # Example
//!
//! ```
//! use wakeup_graph::{generators, algo};
//!
//! let g = generators::cycle(8).expect("valid size");
//! assert_eq!(g.n(), 8);
//! assert_eq!(g.m(), 8);
//! let diameter = algo::diameter(&g).expect("connected");
//! assert_eq!(diameter, 4);
//! ```

// `deny` rather than `forbid`: the one sanctioned exception is the
// `SectionElem` marker impl for `NodeId` in `graph.rs` (no unsafe *code*,
// just a layout assertion the store's zero-copy views rely on).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod families;
pub mod generators;
pub mod graph;
pub mod io;
mod proptests;
pub mod relabel;
pub mod rng;

pub use graph::{Graph, GraphBuilder, GraphError, NodeId};
pub use relabel::Relabeling;
