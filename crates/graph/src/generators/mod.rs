//! Deterministic and seeded graph generators for workloads.
//!
//! All random generators take an explicit `seed` and are fully reproducible
//! via the workspace RNG ([`crate::rng::Xoshiro256`]).

mod random;
mod realistic;
mod structured;

pub use random::{
    erdos_renyi, erdos_renyi_connected, random_bipartite_regular, random_regular, random_tree,
    BipartiteRegular,
};
pub use realistic::{caterpillar, preferential_attachment, ring_of_cliques, watts_strogatz};
pub use structured::{
    balanced_tree, barbell, complete, complete_bipartite, cycle, grid, hypercube, lollipop, path,
    star,
};
