//! Deterministic structured generators.

use crate::{Graph, GraphBuilder, GraphError};

fn invalid(reason: impl Into<String>) -> GraphError {
    GraphError::InvalidSize {
        reason: reason.into(),
    }
}

/// Path graph `P_n` on nodes `0 — 1 — … — n−1`.
///
/// # Errors
///
/// Fails for `n == 0`.
pub fn path(n: usize) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(invalid("path requires at least one node"));
    }
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(i - 1, i)?;
    }
    Ok(b.build())
}

/// Cycle graph `C_n`.
///
/// # Errors
///
/// Fails for `n < 3`.
pub fn cycle(n: usize) -> Result<Graph, GraphError> {
    if n < 3 {
        return Err(invalid("cycle requires at least three nodes"));
    }
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(i, (i + 1) % n)?;
    }
    Ok(b.build())
}

/// Star graph: node 0 is the hub, nodes `1..n` are leaves.
///
/// # Errors
///
/// Fails for `n == 0`.
pub fn star(n: usize) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(invalid("star requires at least one node"));
    }
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(0, i)?;
    }
    Ok(b.build())
}

/// Complete graph `K_n`.
///
/// # Errors
///
/// Fails for `n == 0`.
pub fn complete(n: usize) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(invalid("complete graph requires at least one node"));
    }
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(i, j)?;
        }
    }
    Ok(b.build())
}

/// Complete bipartite graph `K_{a,b}`: sides `0..a` and `a..a+b`.
///
/// # Errors
///
/// Fails if either side is empty.
pub fn complete_bipartite(a: usize, b: usize) -> Result<Graph, GraphError> {
    if a == 0 || b == 0 {
        return Err(invalid("complete bipartite requires nonempty sides"));
    }
    let mut builder = GraphBuilder::new(a + b);
    for i in 0..a {
        for j in 0..b {
            builder.add_edge(i, a + j)?;
        }
    }
    Ok(builder.build())
}

/// `rows × cols` grid graph.
///
/// # Errors
///
/// Fails if either dimension is zero.
pub fn grid(rows: usize, cols: usize) -> Result<Graph, GraphError> {
    if rows == 0 || cols == 0 {
        return Err(invalid("grid requires positive dimensions"));
    }
    let mut b = GraphBuilder::new(rows * cols);
    let at = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(at(r, c), at(r, c + 1))?;
            }
            if r + 1 < rows {
                b.add_edge(at(r, c), at(r + 1, c))?;
            }
        }
    }
    Ok(b.build())
}

/// The `d`-dimensional hypercube `Q_d` on `2^d` nodes.
///
/// # Errors
///
/// Fails for `d > 20` (guards accidental huge allocations).
pub fn hypercube(d: usize) -> Result<Graph, GraphError> {
    if d > 20 {
        return Err(invalid("hypercube dimension capped at 20"));
    }
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let w = v ^ (1 << bit);
            if v < w {
                b.add_edge(v, w)?;
            }
        }
    }
    Ok(b.build())
}

/// Perfectly balanced rooted tree with branching factor `arity` and the given
/// `depth` (depth 0 is a single root).
///
/// # Errors
///
/// Fails for `arity == 0` with positive depth, or when the node count would
/// overflow practical sizes (> 2^26 nodes).
pub fn balanced_tree(arity: usize, depth: usize) -> Result<Graph, GraphError> {
    if arity == 0 && depth > 0 {
        return Err(invalid("balanced tree with depth > 0 requires arity >= 1"));
    }
    // Count nodes level by level.
    let mut level_sizes = vec![1usize];
    for _ in 0..depth {
        let next = level_sizes
            .last()
            .unwrap()
            .checked_mul(arity)
            .ok_or_else(|| invalid("balanced tree too large"))?;
        level_sizes.push(next);
    }
    let n: usize = level_sizes.iter().sum();
    if n > (1 << 26) {
        return Err(invalid("balanced tree too large"));
    }
    let mut b = GraphBuilder::new(n);
    // Nodes are laid out level by level; children of node v at level l start
    // at level_offset(l+1) + (v - level_offset(l)) * arity.
    let mut offsets = vec![0usize];
    for s in &level_sizes {
        offsets.push(offsets.last().unwrap() + s);
    }
    for l in 0..depth {
        for i in 0..level_sizes[l] {
            let v = offsets[l] + i;
            for c in 0..arity {
                let w = offsets[l + 1] + i * arity + c;
                b.add_edge(v, w)?;
            }
        }
    }
    Ok(b.build())
}

/// Barbell graph: two `K_a` cliques joined by a path of `bridge` extra nodes.
///
/// # Errors
///
/// Fails for `a < 2`.
pub fn barbell(a: usize, bridge: usize) -> Result<Graph, GraphError> {
    if a < 2 {
        return Err(invalid("barbell cliques need at least two nodes"));
    }
    let n = 2 * a + bridge;
    let mut b = GraphBuilder::new(n);
    for i in 0..a {
        for j in (i + 1)..a {
            b.add_edge(i, j)?;
            b.add_edge(a + bridge + i, a + bridge + j)?;
        }
    }
    // Path from clique 1 (node a-1) through the bridge to clique 2 (node a+bridge).
    let mut prev = a - 1;
    for t in 0..bridge {
        b.add_edge(prev, a + t)?;
        prev = a + t;
    }
    b.add_edge(prev, a + bridge)?;
    Ok(b.build())
}

/// Lollipop graph: a `K_a` clique with a pendant path of `tail` nodes — the
/// paper's footnote-3 example of why push-only gossip fails (a complete graph
/// `H` plus a single vertex attached by one edge is `lollipop(a, 1)`).
///
/// # Errors
///
/// Fails for `a < 2`.
pub fn lollipop(a: usize, tail: usize) -> Result<Graph, GraphError> {
    if a < 2 {
        return Err(invalid("lollipop clique needs at least two nodes"));
    }
    let n = a + tail;
    let mut b = GraphBuilder::new(n);
    for i in 0..a {
        for j in (i + 1)..a {
            b.add_edge(i, j)?;
        }
    }
    let mut prev = a - 1;
    for t in 0..tail {
        b.add_edge(prev, a + t)?;
        prev = a + t;
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn path_counts() {
        let g = path(10).unwrap();
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 9);
        assert!(path(0).is_err());
    }

    #[test]
    fn cycle_counts() {
        let g = cycle(5).unwrap();
        assert_eq!((g.n(), g.m()), (5, 5));
        assert!(cycle(2).is_err());
    }

    #[test]
    fn star_counts() {
        let g = star(7).unwrap();
        assert_eq!(g.m(), 6);
        assert_eq!(g.max_degree(), 6);
        assert!(star(0).is_err());
        // A single-node star is legal.
        assert_eq!(star(1).unwrap().m(), 0);
    }

    #[test]
    fn complete_counts() {
        let g = complete(6).unwrap();
        assert_eq!(g.m(), 15);
        assert_eq!(g.min_degree(), 5);
    }

    #[test]
    fn complete_bipartite_counts() {
        let g = complete_bipartite(3, 4).unwrap();
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 12);
        assert!(complete_bipartite(0, 4).is_err());
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4).unwrap();
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4);
        assert_eq!(algo::diameter(&g), Some(2 + 3));
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(4).unwrap();
        assert_eq!(g.n(), 16);
        assert_eq!(g.m(), 32);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
        assert_eq!(algo::diameter(&g), Some(4));
    }

    #[test]
    fn hypercube_zero_dim() {
        let g = hypercube(0).unwrap();
        assert_eq!((g.n(), g.m()), (1, 0));
    }

    #[test]
    fn balanced_tree_structure() {
        let g = balanced_tree(2, 3).unwrap();
        assert_eq!(g.n(), 15);
        assert_eq!(g.m(), 14);
        assert_eq!(algo::girth(&g), None);
        assert!(balanced_tree(0, 2).is_err());
        assert_eq!(balanced_tree(0, 0).unwrap().n(), 1);
    }

    #[test]
    fn barbell_structure() {
        let g = barbell(4, 2).unwrap();
        assert_eq!(g.n(), 10);
        assert!(algo::is_connected(&g));
        assert_eq!(g.m(), 2 * 6 + 3);
    }

    #[test]
    fn lollipop_matches_footnote_example() {
        // Complete graph H plus one pendant vertex.
        let g = lollipop(6, 1).unwrap();
        assert_eq!(g.n(), 7);
        assert_eq!(g.degree(crate::NodeId::new(6)), 1);
        assert!(algo::is_connected(&g));
    }
}
