//! Generators for "realistic" network shapes used as example and benchmark
//! workloads: small-world rewirings, preferential attachment, and clustered
//! topologies.

use crate::rng::Xoshiro256;
use crate::{Graph, GraphBuilder, GraphError};

fn invalid(reason: impl Into<String>) -> GraphError {
    GraphError::InvalidSize {
        reason: reason.into(),
    }
}

/// Watts–Strogatz small world: a ring lattice where each node connects to
/// its `k` nearest neighbors on each side, with every edge rewired to a
/// random endpoint with probability `p`.
///
/// Rewiring never disconnects a node entirely (self-loops and duplicates are
/// re-rolled with a bounded number of attempts, keeping the original edge on
/// failure), so the result stays simple.
///
/// # Errors
///
/// Fails for `n < 2k + 2`, `k == 0`, or `p` outside `[0, 1]`.
pub fn watts_strogatz(n: usize, k: usize, p: f64, seed: u64) -> Result<Graph, GraphError> {
    if k == 0 {
        return Err(invalid("small world requires k >= 1"));
    }
    if n < 2 * k + 2 {
        return Err(invalid(format!(
            "small world requires n >= 2k + 2 = {}",
            2 * k + 2
        )));
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(invalid(format!("rewiring probability {p} outside [0, 1]")));
    }
    let mut rng = Xoshiro256::seed_from(seed);
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for d in 1..=k {
            let w = (v + d) % n;
            let (u, w) = if rng.bernoulli(p) {
                // Rewire the far endpoint.
                let mut attempts = 0;
                loop {
                    let cand = rng.index(n);
                    if cand != v && !b.has_edge(v, cand) {
                        break (v, cand);
                    }
                    attempts += 1;
                    if attempts > 32 {
                        break (v, w);
                    }
                }
            } else {
                (v, w)
            };
            b.add_edge_if_absent(u, w)?;
        }
    }
    Ok(b.build())
}

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new node to `m` existing nodes with probability
/// proportional to their degree.
///
/// # Errors
///
/// Fails for `m == 0` or `n <= m`.
pub fn preferential_attachment(n: usize, m: usize, seed: u64) -> Result<Graph, GraphError> {
    if m == 0 {
        return Err(invalid("preferential attachment requires m >= 1"));
    }
    if n <= m {
        return Err(invalid(format!(
            "preferential attachment requires n > m = {m}"
        )));
    }
    let mut rng = Xoshiro256::seed_from(seed);
    let mut b = GraphBuilder::new(n);
    // Degree-proportional sampling via the repeated-endpoints trick.
    let mut endpoints: Vec<usize> = Vec::new();
    // Seed clique on m+1 nodes.
    for i in 0..=m {
        for j in (i + 1)..=m {
            b.add_edge(i, j)?;
            endpoints.push(i);
            endpoints.push(j);
        }
    }
    for v in (m + 1)..n {
        let mut chosen = std::collections::BTreeSet::new();
        let mut attempts = 0;
        while chosen.len() < m && attempts < 64 * m {
            let target = endpoints[rng.index(endpoints.len())];
            attempts += 1;
            if target != v {
                chosen.insert(target);
            }
        }
        // Fallback: fill from lowest indices (only on pathological rolls).
        let mut fill = 0usize;
        while chosen.len() < m {
            if fill != v {
                chosen.insert(fill);
            }
            fill += 1;
        }
        for &t in &chosen {
            b.add_edge(v, t)?;
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    Ok(b.build())
}

/// A ring of `count` cliques of size `size`, consecutive cliques joined by a
/// single bridge edge — high clustering with long bridges, a stress case for
/// message-efficient wake-up.
///
/// # Errors
///
/// Fails for `count < 3` or `size < 2`.
pub fn ring_of_cliques(count: usize, size: usize) -> Result<Graph, GraphError> {
    if count < 3 {
        return Err(invalid("ring of cliques requires at least three cliques"));
    }
    if size < 2 {
        return Err(invalid("cliques need at least two nodes"));
    }
    let n = count * size;
    let mut b = GraphBuilder::new(n);
    for c in 0..count {
        let base = c * size;
        for i in 0..size {
            for j in (i + 1)..size {
                b.add_edge(base + i, base + j)?;
            }
        }
        // Bridge: last node of this clique to first node of the next.
        let next = ((c + 1) % count) * size;
        b.add_edge_if_absent(base + size - 1, next)?;
    }
    Ok(b.build())
}

/// A caterpillar: a spine path of `spine` nodes, each carrying `legs` leaf
/// nodes — the tree shape with maximal leaf pressure on tree-based advice
/// schemes.
///
/// # Errors
///
/// Fails for `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> Result<Graph, GraphError> {
    if spine == 0 {
        return Err(invalid("caterpillar requires a nonempty spine"));
    }
    let n = spine + spine * legs;
    let mut b = GraphBuilder::new(n);
    for s in 1..spine {
        b.add_edge(s - 1, s)?;
    }
    for s in 0..spine {
        for l in 0..legs {
            b.add_edge(s, spine + s * legs + l)?;
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn watts_strogatz_zero_p_is_lattice() {
        let g = watts_strogatz(20, 2, 0.0, 1).unwrap();
        assert_eq!(g.m(), 40);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn watts_strogatz_rewired_stays_simple_and_same_m_or_less() {
        for seed in 0..5 {
            let g = watts_strogatz(40, 3, 0.3, seed).unwrap();
            assert!(g.m() <= 120);
            assert!(
                g.m() >= 100,
                "rewiring should rarely drop edges: m = {}",
                g.m()
            );
        }
    }

    #[test]
    fn watts_strogatz_shrinks_diameter() {
        let lattice = watts_strogatz(64, 2, 0.0, 1).unwrap();
        let small = watts_strogatz(64, 2, 0.3, 1).unwrap();
        if algo::is_connected(&small) {
            let d_lattice = algo::diameter(&lattice).unwrap();
            let d_small = algo::diameter(&small).unwrap();
            assert!(d_small < d_lattice, "{d_small} !< {d_lattice}");
        }
    }

    #[test]
    fn watts_strogatz_validates() {
        assert!(watts_strogatz(5, 2, 0.1, 0).is_err());
        assert!(watts_strogatz(20, 0, 0.1, 0).is_err());
        assert!(watts_strogatz(20, 2, 1.5, 0).is_err());
    }

    #[test]
    fn preferential_attachment_structure() {
        let g = preferential_attachment(100, 2, 3).unwrap();
        assert_eq!(g.n(), 100);
        assert!(algo::is_connected(&g));
        // Edge count: clique(3) + 2 per newcomer.
        assert_eq!(g.m(), 3 + 2 * 97);
        // Heavy tail: the max degree should well exceed the mean.
        assert!(g.max_degree() as f64 > 2.5 * g.average_degree());
    }

    #[test]
    fn preferential_attachment_validates() {
        assert!(preferential_attachment(5, 0, 0).is_err());
        assert!(preferential_attachment(2, 2, 0).is_err());
    }

    #[test]
    fn ring_of_cliques_structure() {
        let g = ring_of_cliques(4, 5).unwrap();
        assert_eq!(g.n(), 20);
        assert!(algo::is_connected(&g));
        assert_eq!(g.m(), 4 * 10 + 4);
        assert_eq!(algo::girth(&g), Some(3));
    }

    #[test]
    fn caterpillar_is_tree() {
        let g = caterpillar(6, 4).unwrap();
        assert_eq!(g.n(), 30);
        assert_eq!(g.m(), 29);
        assert!(algo::is_connected(&g));
        assert_eq!(algo::girth(&g), None);
    }

    #[test]
    fn caterpillar_no_legs_is_path() {
        let g = caterpillar(5, 0).unwrap();
        assert_eq!(g.m(), 4);
        assert_eq!(algo::diameter(&g), Some(4));
    }
}
