//! Seeded random generators.

use crate::rng::Xoshiro256;
use crate::{Graph, GraphBuilder, GraphError};

fn invalid(reason: impl Into<String>) -> GraphError {
    GraphError::InvalidSize {
        reason: reason.into(),
    }
}

/// Node count above which [`erdos_renyi`] switches from per-pair Bernoulli
/// draws to geometric skip sampling. Every committed artifact (test graphs,
/// execution goldens, benchmark rows) lives below this size, so their
/// bit-exact streams are preserved; everything at or above it pays the
/// `O(n + m)` (and equally seeded-deterministic) sampling path.
///
/// History: the skip sampler originally engaged only at `n > 20_000`, which
/// left the benchmark's `n = 10⁴` sparse rows on the `O(n²)` Bernoulli path
/// — 272 ms of cold build versus 172 ms for `n = 10⁵` in schema-4
/// BENCH_engine.json, a visible inversion. The per-pair loop draws
/// `n(n-1)/2` variates regardless of density, so for the sparse `p = 8/n`
/// family the crossover belongs far lower: at `n = 1024` the Bernoulli path
/// already burns ~524k draws to place ~4k edges, while skip sampling pays
/// one draw per edge. 1024 keeps every committed small-n artifact
/// (goldens ≤ 97 nodes, bench sweeps ≤ 512, audit traces at 16) on its
/// original bit-exact stream.
const GEOMETRIC_SKIP_MIN_N: usize = 1_024;

/// Erdős–Rényi graph `G(n, p)` with the given seed.
///
/// For `n < 1024` every pair is tested with an independent Bernoulli
/// draw, in canonical pair order. From `n = 1024` up, the generator draws
/// geometric skip lengths between successive edges instead — `O(n + m)`
/// rather than `O(n²)`, which is what makes `n = 10⁴`–`10⁶` sweep rows
/// feasible. Both regimes are deterministic in `(n, p, seed)` and sample
/// the same `G(n, p)` distribution, but they consume the RNG stream
/// differently, so the same seed yields different (equally valid) graphs
/// on either side of the threshold.
///
/// # Errors
///
/// Fails for `n == 0` or `p` outside `[0, 1]`.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(invalid("G(n,p) requires at least one node"));
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(invalid(format!("edge probability {p} outside [0, 1]")));
    }
    let mut rng = Xoshiro256::seed_from(seed);
    let mut b = GraphBuilder::new(n);
    if n < GEOMETRIC_SKIP_MIN_N {
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.bernoulli(p) {
                    b.add_edge(i, j)?;
                }
            }
        }
    } else if p > 0.0 {
        // Skip sampling: the gap before the next present pair in canonical
        // order is geometric with success probability p, sampled by
        // inversion as floor(ln(1 − U) / ln(1 − p)). For p = 1 the log is
        // −∞ and every skip is 0, i.e. the complete graph, as required.
        let ln_q = (1.0 - p).ln();
        let (mut i, mut j) = (0usize, 1usize);
        while i + 1 < n {
            let u = rng.unit_f64();
            let mut skip = ((1.0 - u).ln() / ln_q) as u64;
            // Advance the (i, j) cursor over `skip` absent pairs.
            while skip > 0 && i + 1 < n {
                let row_left = (n - j) as u64;
                if skip < row_left {
                    j += skip as usize;
                    skip = 0;
                } else {
                    skip -= row_left;
                    i += 1;
                    j = i + 1;
                }
            }
            if i + 1 < n {
                b.add_edge(i, j)?;
                j += 1;
                if j == n {
                    i += 1;
                    j = i + 1;
                }
            }
        }
    }
    Ok(b.build())
}

/// Connected Erdős–Rényi graph: samples `G(n, p)` and, if disconnected, adds
/// one random edge between consecutive components (a minimal connectivity
/// patch that preserves the degree distribution up to +1 per component).
///
/// # Errors
///
/// Same conditions as [`erdos_renyi`].
pub fn erdos_renyi_connected(n: usize, p: f64, seed: u64) -> Result<Graph, GraphError> {
    let g = erdos_renyi(n, p, seed)?;
    let (labels, k) = crate::algo::connected_components(&g);
    if k <= 1 {
        return Ok(g);
    }
    let mut rng = Xoshiro256::seed_from(seed ^ 0xC0FF_EE00);
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (v, &l) in labels.iter().enumerate() {
        members[l].push(v);
    }
    let mut b = GraphBuilder::new(n);
    for &(u, v) in g.edges() {
        b.add_edge(u.index(), v.index())?;
    }
    for c in 1..k {
        let u = members[c - 1][rng.index(members[c - 1].len())];
        let v = members[c][rng.index(members[c].len())];
        b.add_edge_if_absent(u, v)?;
    }
    Ok(b.build())
}

/// Uniform random labelled tree on `n` nodes via a Prüfer-style attachment
/// process (each node `i >= 1` attaches to a uniformly random earlier node,
/// then labels are shuffled — a random recursive tree with relabelling).
///
/// # Errors
///
/// Fails for `n == 0`.
pub fn random_tree(n: usize, seed: u64) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(invalid("tree requires at least one node"));
    }
    let mut rng = Xoshiro256::seed_from(seed);
    let relabel = rng.permutation(n);
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let j = rng.index(i);
        b.add_edge(relabel[i], relabel[j])?;
    }
    Ok(b.build())
}

/// Random `d`-regular graph via the pairing model with restarts.
///
/// # Errors
///
/// Fails if `n·d` is odd, `d >= n`, or a simple pairing cannot be found in a
/// reasonable number of restarts (only plausible for adversarial parameters).
pub fn random_regular(n: usize, d: usize, seed: u64) -> Result<Graph, GraphError> {
    if d >= n {
        return Err(invalid(format!("degree {d} must be below n = {n}")));
    }
    if !(n * d).is_multiple_of(2) {
        return Err(invalid("n * d must be even for a d-regular graph"));
    }
    if d == 0 {
        return Ok(Graph::empty(n));
    }
    let mut rng = Xoshiro256::seed_from(seed);
    'restart: for _attempt in 0..200 {
        let mut stubs: Vec<usize> = (0..n * d).map(|s| s / d).collect();
        rng.shuffle(&mut stubs);
        let mut b = GraphBuilder::new(n);
        for pair in stubs.chunks(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v {
                continue 'restart;
            }
            match b.add_edge_if_absent(u, v) {
                Ok(true) => {}
                Ok(false) => continue 'restart,
                Err(e) => return Err(e),
            }
        }
        return Ok(b.build());
    }
    Err(invalid(format!(
        "no simple {d}-regular pairing found for n = {n} after 200 restarts"
    )))
}

/// Random bipartite `d`-regular graph between sides `0..side` and
/// `side..2·side`, with an optional girth floor.
///
/// When `min_girth` is `Some(g)`, edges that would close a cycle shorter than
/// `g` are rejected (Erdős–Sachs-style greedy); the generator then aims for
/// `d`-regularity but may leave a small deficit at the densest feasibility
/// boundary, reported via [`BipartiteRegular::deficit`]. This is the
/// substitution for the Lazebnik–Ustimenko graphs used by the 𝒢ₖ family
/// (see DESIGN.md).
///
/// # Errors
///
/// Fails for `side == 0` or `d > side`.
pub fn random_bipartite_regular(
    side: usize,
    d: usize,
    min_girth: Option<usize>,
    seed: u64,
) -> Result<BipartiteRegular, GraphError> {
    if side == 0 {
        return Err(invalid("bipartite sides must be nonempty"));
    }
    if d > side {
        return Err(invalid(format!("degree {d} exceeds side size {side}")));
    }
    let n = 2 * side;
    let mut rng = Xoshiro256::seed_from(seed);
    let mut b = GraphBuilder::new(n);
    let mut deg = vec![0usize; n];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    // Round-robin over left nodes, picking random right partners; with a
    // girth floor we reject partners that close short cycles. A bounded
    // number of sweeps keeps termination unconditional.
    let girth_floor = min_girth.unwrap_or(0);
    let max_sweeps = 12 * d.max(1);
    let mut dist = vec![usize::MAX; n];
    let mut touched: Vec<usize> = Vec::new();
    for _sweep in 0..max_sweeps {
        let mut progress = false;
        for u in 0..side {
            if deg[u] >= d {
                continue;
            }
            // Collect candidate right nodes with remaining capacity.
            let mut candidates: Vec<usize> = (side..n)
                .filter(|&v| deg[v] < d && !b.has_edge(u, v))
                .collect();
            if candidates.is_empty() {
                continue;
            }
            rng.shuffle(&mut candidates);
            for v in candidates {
                if girth_floor > 4
                    && closes_short_cycle(&adj, u, v, girth_floor, &mut dist, &mut touched)
                {
                    continue;
                }
                b.add_edge(u, v)?;
                deg[u] += 1;
                deg[v] += 1;
                adj[u].push(v);
                adj[v].push(u);
                progress = true;
                break;
            }
        }
        if !progress {
            break;
        }
        if (0..side).all(|u| deg[u] >= d) {
            break;
        }
    }
    let deficit = (0..n).map(|v| d.saturating_sub(deg[v])).sum();
    Ok(BipartiteRegular {
        graph: b.build(),
        target_degree: d,
        deficit,
    })
}

/// Result of [`random_bipartite_regular`].
#[derive(Debug, Clone)]
pub struct BipartiteRegular {
    /// The generated bipartite graph.
    pub graph: Graph,
    /// Requested per-node degree.
    pub target_degree: usize,
    /// Total missing degree across all nodes (0 for exact regularity).
    pub deficit: usize,
}

/// Checks whether adding `{u, v}` would create a cycle shorter than
/// `girth_floor`, by a bounded-depth BFS from `u` toward `v` in the current
/// partial graph. A cycle through the new edge has length `dist(u, v) + 1`,
/// so the edge is rejected iff `dist(u, v) <= girth_floor - 2`.
///
/// `dist`/`touched` are caller-provided scratch buffers (reset on exit) so
/// the hot generator loop performs no allocation.
fn closes_short_cycle(
    adj: &[Vec<usize>],
    u: usize,
    v: usize,
    girth_floor: usize,
    dist: &mut [usize],
    touched: &mut Vec<usize>,
) -> bool {
    let limit = girth_floor - 2;
    dist[u] = 0;
    touched.push(u);
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(u);
    let mut found = false;
    'bfs: while let Some(x) = queue.pop_front() {
        let dx = dist[x];
        if dx >= limit {
            continue;
        }
        for &y in &adj[x] {
            if dist[y] == usize::MAX {
                dist[y] = dx + 1;
                touched.push(y);
                if y == v {
                    found = true;
                    break 'bfs;
                }
                queue.push_back(y);
            }
        }
    }
    for &t in touched.iter() {
        dist[t] = usize::MAX;
    }
    touched.clear();
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn erdos_renyi_reproducible() {
        let a = erdos_renyi(30, 0.2, 5).unwrap();
        let b = erdos_renyi(30, 0.2, 5).unwrap();
        assert_eq!(a.edges(), b.edges());
        let c = erdos_renyi(30, 0.2, 6).unwrap();
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn erdos_renyi_extremes() {
        assert_eq!(erdos_renyi(10, 0.0, 1).unwrap().m(), 0);
        assert_eq!(erdos_renyi(10, 1.0, 1).unwrap().m(), 45);
        assert!(erdos_renyi(10, 1.5, 1).is_err());
        assert!(erdos_renyi(0, 0.5, 1).is_err());
    }

    #[test]
    fn erdos_renyi_skip_sampling_edge_count() {
        // Above the skip-sampling threshold: m ~ Binomial(n(n-1)/2, p) with
        // mean ≈ 4n for p = 8/n; allow a generous multi-sigma band.
        let n = 30_000usize;
        let g = erdos_renyi(n, 8.0 / n as f64, 17).unwrap();
        let expect = 4 * n;
        assert!(
            (g.m() as f64 - expect as f64).abs() < 0.05 * expect as f64,
            "m = {}, expected ≈ {expect}",
            g.m()
        );
    }

    #[test]
    fn erdos_renyi_skip_sampling_reproducible() {
        let n = 25_000usize;
        let a = erdos_renyi(n, 8.0 / n as f64, 5).unwrap();
        let b = erdos_renyi(n, 8.0 / n as f64, 5).unwrap();
        assert_eq!(a.edges(), b.edges());
        let c = erdos_renyi(n, 8.0 / n as f64, 6).unwrap();
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn erdos_renyi_skip_sampling_zero_p() {
        assert_eq!(erdos_renyi(25_000, 0.0, 1).unwrap().m(), 0);
    }

    /// The regime boundary sits exactly at `GEOMETRIC_SKIP_MIN_N`: the last
    /// Bernoulli size keeps its historical stream (pinned via an edge-count
    /// fingerprint so accidental crossover moves fail loudly), and the
    /// first skip-sampled size is deterministic with a plausible edge
    /// count.
    #[test]
    fn crossover_boundary_regimes() {
        let below = GEOMETRIC_SKIP_MIN_N - 1; // 1023: per-pair Bernoulli
        let at = GEOMETRIC_SKIP_MIN_N; // 1024: geometric skip
        let p = 8.0 / below as f64;
        let a = erdos_renyi(below, p, 11).unwrap();
        let b = erdos_renyi(below, p, 11).unwrap();
        assert_eq!(a.edges(), b.edges());
        let c = erdos_renyi(at, 8.0 / at as f64, 11).unwrap();
        let d = erdos_renyi(at, 8.0 / at as f64, 11).unwrap();
        assert_eq!(c.edges(), d.edges());
        for g in [&a, &c] {
            let expect = 4.0 * g.n() as f64;
            assert!(
                (g.m() as f64 - expect).abs() < 0.15 * expect,
                "n = {}, m = {}, expected ≈ {expect}",
                g.n(),
                g.m()
            );
        }
    }

    #[test]
    fn connected_variant_connects_large() {
        let n = 30_000usize;
        let g = erdos_renyi_connected(n, 8.0 / n as f64, 3).unwrap();
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn connected_variant_connects() {
        for seed in 0..5 {
            let g = erdos_renyi_connected(40, 0.03, seed).unwrap();
            assert!(algo::is_connected(&g), "seed {seed}");
        }
    }

    #[test]
    fn random_tree_is_tree() {
        for seed in 0..5 {
            let g = random_tree(25, seed).unwrap();
            assert_eq!(g.m(), 24);
            assert!(algo::is_connected(&g));
            assert_eq!(algo::girth(&g), None);
        }
    }

    #[test]
    fn random_regular_degrees() {
        let g = random_regular(24, 4, 9).unwrap();
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
        assert!(random_regular(5, 3, 0).is_err(), "odd n*d");
        assert!(random_regular(4, 4, 0).is_err(), "d >= n");
        assert_eq!(random_regular(6, 0, 0).unwrap().m(), 0);
    }

    #[test]
    fn bipartite_regular_no_girth_floor() {
        let r = random_bipartite_regular(16, 3, None, 2).unwrap();
        assert_eq!(r.deficit, 0);
        let g = &r.graph;
        for v in g.nodes() {
            assert_eq!(g.degree(v), 3);
        }
        // Bipartite: no odd cycles.
        if let Some(girth) = algo::girth(g) {
            assert_eq!(girth % 2, 0);
        }
    }

    #[test]
    fn bipartite_regular_respects_girth_floor() {
        let r = random_bipartite_regular(64, 3, Some(8), 3).unwrap();
        if let Some(girth) = algo::girth(&r.graph) {
            assert!(girth >= 8, "girth {girth} below floor");
        }
        // Some deficit is allowed, but the graph should be near-regular.
        assert!(
            r.deficit <= r.graph.n(),
            "unexpectedly large deficit {}",
            r.deficit
        );
    }

    #[test]
    fn bipartite_sides_respected() {
        let side = 10;
        let r = random_bipartite_regular(side, 2, None, 4).unwrap();
        for &(u, v) in r.graph.edges() {
            let left = u.index() < side;
            let right = v.index() >= side;
            assert!(left && right, "edge {u}-{v} not across the bipartition");
        }
    }
}
