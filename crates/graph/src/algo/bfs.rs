//! Breadth-first search: distances, trees, and multi-source variants.

use std::collections::VecDeque;

use crate::{Graph, NodeId};

/// Distance value representing "unreachable".
pub const UNREACHABLE: usize = usize::MAX;

/// A rooted BFS tree (or forest, for multiple sources).
///
/// Produced by [`bfs_tree`] and [`multi_source_bfs`]; the advice oracles in
/// `wakeup-core` turn these into per-node advice strings.
#[derive(Debug, Clone)]
pub struct BfsTree {
    roots: Vec<NodeId>,
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    depth: Vec<usize>,
}

impl BfsTree {
    /// The sources the search started from.
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// Parent of `v` in the tree, or `None` for roots and unreachable nodes.
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.index()]
    }

    /// Children of `v`, sorted by node index.
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v.index()]
    }

    /// Hop distance of `v` from the nearest root, or [`UNREACHABLE`].
    pub fn depth(&self, v: NodeId) -> usize {
        self.depth[v.index()]
    }

    /// Whether `v` was reached by the search.
    pub fn reached(&self, v: NodeId) -> bool {
        self.depth[v.index()] != UNREACHABLE
    }

    /// Height of the tree: maximum finite depth.
    pub fn height(&self) -> usize {
        self.depth
            .iter()
            .copied()
            .filter(|&d| d != UNREACHABLE)
            .max()
            .unwrap_or(0)
    }

    /// Number of tree edges (= number of non-root reached nodes).
    pub fn edge_count(&self) -> usize {
        self.parent.iter().filter(|p| p.is_some()).count()
    }

    /// Degree of `v` within the tree (children plus parent, if any).
    pub fn tree_degree(&self, v: NodeId) -> usize {
        self.children(v).len() + usize::from(self.parent(v).is_some())
    }

    /// Iterates over all reached nodes in increasing depth order.
    pub fn by_depth(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = (0..self.parent.len())
            .map(NodeId::new)
            .filter(|&v| self.reached(v))
            .collect();
        nodes.sort_by_key(|&v| (self.depth(v), v));
        nodes
    }
}

/// Hop distances from `source` to every node ([`UNREACHABLE`] if none).
///
/// # Example
///
/// ```
/// use wakeup_graph::{generators, algo, NodeId};
/// let g = generators::path(5)?;
/// let d = algo::bfs_distances(&g, NodeId::new(0));
/// assert_eq!(d[4], 4);
/// # Ok::<(), wakeup_graph::GraphError>(())
/// ```
pub fn bfs_distances(graph: &Graph, source: NodeId) -> Vec<usize> {
    multi_source_distances(graph, std::slice::from_ref(&source))
}

/// Hop distances from the nearest of several `sources`.
pub fn multi_source_distances(graph: &Graph, sources: &[NodeId]) -> Vec<usize> {
    let mut dist = vec![UNREACHABLE; graph.n()];
    let mut queue = VecDeque::new();
    for &s in sources {
        if dist[s.index()] == UNREACHABLE {
            dist[s.index()] = 0;
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        for &w in graph.neighbors(v) {
            if dist[w.index()] == UNREACHABLE {
                dist[w.index()] = dv + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// BFS tree rooted at `root`.
pub fn bfs_tree(graph: &Graph, root: NodeId) -> BfsTree {
    multi_source_bfs(graph, std::slice::from_ref(&root))
}

/// BFS forest grown simultaneously from all `sources`.
///
/// Ties are broken by queue order (sources in the given order, then FIFO), so
/// the result is deterministic.
pub fn multi_source_bfs(graph: &Graph, sources: &[NodeId]) -> BfsTree {
    let n = graph.n();
    let mut parent = vec![None; n];
    let mut depth = vec![UNREACHABLE; n];
    let mut children = vec![Vec::new(); n];
    let mut queue = VecDeque::new();
    let mut roots = Vec::new();
    for &s in sources {
        if depth[s.index()] == UNREACHABLE {
            depth[s.index()] = 0;
            roots.push(s);
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        let dv = depth[v.index()];
        for &w in graph.neighbors(v) {
            if depth[w.index()] == UNREACHABLE {
                depth[w.index()] = dv + 1;
                parent[w.index()] = Some(v);
                children[v.index()].push(w);
                queue.push_back(w);
            }
        }
    }
    BfsTree {
        roots,
        parent,
        children,
        depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_distances() {
        let g = generators::path(6).unwrap();
        let d = bfs_distances(&g, NodeId::new(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn disconnected_unreachable() {
        let g = Graph::from_edges(4, &[(0, 1)]).unwrap();
        let d = bfs_distances(&g, NodeId::new(0));
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn tree_structure_on_star() {
        let g = generators::star(5).unwrap();
        let t = bfs_tree(&g, NodeId::new(0));
        assert_eq!(t.roots(), &[NodeId::new(0)]);
        assert_eq!(t.children(NodeId::new(0)).len(), 4);
        assert_eq!(t.height(), 1);
        assert_eq!(t.edge_count(), 4);
        for i in 1..5 {
            assert_eq!(t.parent(NodeId::new(i)), Some(NodeId::new(0)));
            assert_eq!(t.tree_degree(NodeId::new(i)), 1);
        }
        assert_eq!(t.tree_degree(NodeId::new(0)), 4);
    }

    #[test]
    fn multi_source_nearest() {
        let g = generators::path(7).unwrap();
        let t = multi_source_bfs(&g, &[NodeId::new(0), NodeId::new(6)]);
        assert_eq!(t.depth(NodeId::new(3)), 3);
        assert_eq!(t.depth(NodeId::new(5)), 1);
        assert_eq!(t.roots().len(), 2);
    }

    #[test]
    fn duplicate_sources_collapse() {
        let g = generators::path(3).unwrap();
        let t = multi_source_bfs(&g, &[NodeId::new(1), NodeId::new(1)]);
        assert_eq!(t.roots(), &[NodeId::new(1)]);
    }

    #[test]
    fn by_depth_is_sorted() {
        let g = generators::path(5).unwrap();
        let t = bfs_tree(&g, NodeId::new(2));
        let order = t.by_depth();
        for w in order.windows(2) {
            assert!(t.depth(w[0]) <= t.depth(w[1]));
        }
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn parent_child_consistency() {
        let g = generators::erdos_renyi_connected(40, 0.15, 99).unwrap();
        let t = bfs_tree(&g, NodeId::new(0));
        for v in g.nodes() {
            for &c in t.children(v) {
                assert_eq!(t.parent(c), Some(v));
                assert_eq!(t.depth(c), t.depth(v) + 1);
            }
        }
    }
}
