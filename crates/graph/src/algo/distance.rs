//! Distance-based measures: eccentricity, diameter, and the paper's awake
//! distance ρ_awk (Section 1.2, equation (1)).

use super::bfs::{bfs_distances, multi_source_distances, UNREACHABLE};
use crate::{Graph, NodeId};

/// Eccentricity of `v`: the maximum hop distance from `v` to any node, or
/// `None` if some node is unreachable from `v`.
pub fn eccentricity(graph: &Graph, v: NodeId) -> Option<usize> {
    let d = bfs_distances(graph, v);
    let mut ecc = 0usize;
    for &x in &d {
        if x == UNREACHABLE {
            return None;
        }
        ecc = ecc.max(x);
    }
    Some(ecc)
}

/// Exact diameter via BFS from every node; `None` if disconnected.
///
/// Runs in `O(n·m)`; all graph sizes in the experiments keep this cheap.
///
/// # Example
///
/// ```
/// use wakeup_graph::{generators, algo};
/// let g = generators::star(10)?;
/// assert_eq!(algo::diameter(&g), Some(2));
/// # Ok::<(), wakeup_graph::GraphError>(())
/// ```
pub fn diameter(graph: &Graph) -> Option<usize> {
    if graph.n() == 0 {
        return Some(0);
    }
    let mut best = 0usize;
    for v in graph.nodes() {
        best = best.max(eccentricity(graph, v)?);
    }
    Some(best)
}

/// Double-sweep lower bound on the diameter: BFS from `start`, then BFS from
/// the farthest node found. Exact on trees; a lower bound in general.
pub fn double_sweep_lower_bound(graph: &Graph, start: NodeId) -> Option<usize> {
    let d1 = bfs_distances(graph, start);
    if d1.contains(&UNREACHABLE) {
        return None;
    }
    let far = d1
        .iter()
        .enumerate()
        .max_by_key(|&(_, d)| *d)
        .map(|(i, _)| NodeId::new(i))?;
    eccentricity(graph, far)
}

/// The radius (minimum eccentricity) and a center node attaining it, or
/// `None` for disconnected graphs.
///
/// Rooting a BFS tree at a center halves the worst-case tree height compared
/// to an arbitrary root, which is why the advising schemes default to it.
///
/// # Example
///
/// ```
/// use wakeup_graph::{generators, algo, NodeId};
/// let g = generators::path(9)?;
/// let (radius, center) = algo::center(&g).expect("connected");
/// assert_eq!(radius, 4);
/// assert_eq!(center, NodeId::new(4));
/// # Ok::<(), wakeup_graph::GraphError>(())
/// ```
pub fn center(graph: &Graph) -> Option<(usize, NodeId)> {
    let mut best: Option<(usize, NodeId)> = None;
    for v in graph.nodes() {
        let ecc = eccentricity(graph, v)?;
        if best.is_none_or(|(b, _)| ecc < b) {
            best = Some((ecc, v));
        }
    }
    best
}

/// The awake distance ρ_awk(G, A₀): the maximum over nodes `u` of the hop
/// distance from `u` to the nearest initially-awake node (paper eq. (1)).
///
/// Returns `None` if `awake` is empty or some node is unreachable from every
/// awake node (in which case no wake-up algorithm can succeed).
///
/// # Example
///
/// ```
/// use wakeup_graph::{generators, algo, NodeId};
/// let g = generators::path(7)?;
/// // Waking both endpoints halves the distance compared to the diameter.
/// let rho = algo::awake_distance(&g, &[NodeId::new(0), NodeId::new(6)]);
/// assert_eq!(rho, Some(3));
/// # Ok::<(), wakeup_graph::GraphError>(())
/// ```
pub fn awake_distance(graph: &Graph, awake: &[NodeId]) -> Option<usize> {
    if awake.is_empty() {
        return None;
    }
    let d = multi_source_distances(graph, awake);
    let mut rho = 0usize;
    for &x in &d {
        if x == UNREACHABLE {
            return None;
        }
        rho = rho.max(x);
    }
    Some(rho)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_diameter() {
        let g = generators::path(9).unwrap();
        assert_eq!(diameter(&g), Some(8));
    }

    #[test]
    fn cycle_diameter() {
        assert_eq!(diameter(&generators::cycle(10).unwrap()), Some(5));
        assert_eq!(diameter(&generators::cycle(11).unwrap()), Some(5));
    }

    #[test]
    fn complete_diameter_one() {
        assert_eq!(diameter(&generators::complete(7).unwrap()), Some(1));
    }

    #[test]
    fn disconnected_diameter_none() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert_eq!(diameter(&g), None);
        assert_eq!(eccentricity(&g, NodeId::new(0)), None);
    }

    #[test]
    fn double_sweep_exact_on_path() {
        let g = generators::path(12).unwrap();
        assert_eq!(double_sweep_lower_bound(&g, NodeId::new(5)), Some(11));
    }

    #[test]
    fn double_sweep_is_lower_bound() {
        let g = generators::erdos_renyi_connected(40, 0.1, 3).unwrap();
        let exact = diameter(&g).unwrap();
        let lb = double_sweep_lower_bound(&g, NodeId::new(0)).unwrap();
        assert!(lb <= exact);
    }

    #[test]
    fn awake_distance_upper_bounded_by_diameter() {
        let g = generators::erdos_renyi_connected(30, 0.15, 5).unwrap();
        let d = diameter(&g).unwrap();
        for a in 0..g.n() {
            let rho = awake_distance(&g, &[NodeId::new(a)]).unwrap();
            assert!(rho <= d);
        }
    }

    #[test]
    fn awake_distance_all_awake_is_zero() {
        let g = generators::cycle(8).unwrap();
        let all: Vec<NodeId> = g.nodes().collect();
        assert_eq!(awake_distance(&g, &all), Some(0));
    }

    #[test]
    fn awake_distance_empty_set_none() {
        let g = generators::cycle(8).unwrap();
        assert_eq!(awake_distance(&g, &[]), None);
    }

    #[test]
    fn center_of_star_is_hub() {
        let g = generators::star(9).unwrap();
        assert_eq!(center(&g), Some((1, NodeId::new(0))));
    }

    #[test]
    fn center_radius_relation() {
        let g = generators::erdos_renyi_connected(35, 0.12, 9).unwrap();
        let (radius, c) = center(&g).unwrap();
        let d = diameter(&g).unwrap();
        assert!(
            radius <= d && d <= 2 * radius,
            "radius {radius}, diameter {d}"
        );
        assert_eq!(eccentricity(&g, c), Some(radius));
    }

    #[test]
    fn center_disconnected_none() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(center(&g), None);
    }

    use crate::Graph;
}
