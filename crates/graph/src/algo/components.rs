//! Connected components.

use crate::{Graph, NodeId};

/// Assigns each node a component label in `0..k` and returns `(labels, k)`.
///
/// Labels are assigned in increasing order of the smallest node index in each
/// component, so the output is deterministic.
pub fn connected_components(graph: &Graph) -> (Vec<usize>, usize) {
    let n = graph.n();
    let mut label = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut stack = Vec::new();
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        label[start] = next;
        stack.push(NodeId::new(start));
        while let Some(v) = stack.pop() {
            for &w in graph.neighbors(v) {
                if label[w.index()] == usize::MAX {
                    label[w.index()] = next;
                    stack.push(w);
                }
            }
        }
        next += 1;
    }
    (label, next)
}

/// Whether the graph is connected (the empty graph counts as connected).
///
/// # Example
///
/// ```
/// use wakeup_graph::{Graph, algo};
/// let g = Graph::from_edges(3, &[(0, 1)])?;
/// assert!(!algo::is_connected(&g));
/// let h = Graph::from_edges(3, &[(0, 1), (1, 2)])?;
/// assert!(algo::is_connected(&h));
/// # Ok::<(), wakeup_graph::GraphError>(())
/// ```
pub fn is_connected(graph: &Graph) -> bool {
    let (_, k) = connected_components(graph);
    k <= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn empty_graph_connected() {
        assert!(is_connected(&Graph::empty(0)));
    }

    #[test]
    fn singleton_connected() {
        assert!(is_connected(&Graph::empty(1)));
    }

    #[test]
    fn isolated_nodes_form_components() {
        let g = Graph::empty(4);
        let (labels, k) = connected_components(&g);
        assert_eq!(k, 4);
        assert_eq!(labels, vec![0, 1, 2, 3]);
    }

    #[test]
    fn two_components() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let (labels, k) = connected_components(&g);
        assert_eq!(k, 2);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn generators_are_connected() {
        for g in [
            generators::path(9).unwrap(),
            generators::cycle(9).unwrap(),
            generators::star(9).unwrap(),
            generators::complete(9).unwrap(),
            generators::hypercube(3).unwrap(),
        ] {
            assert!(is_connected(&g));
        }
    }
}
