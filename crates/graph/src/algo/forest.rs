//! Forest decompositions: partitioning a graph's edge set into rooted
//! spanning forests. The Theorem 6 advising scheme applies the child-encoding
//! scheme to each forest of a spanner's decomposition.

use crate::{Graph, NodeId};

/// A rooted forest over the node set of some graph.
///
/// Every node has at most one parent; nodes with no parent are roots of their
/// trees (isolated nodes are trivial roots). Parent/child edges always exist
/// in the source graph.
#[derive(Debug, Clone)]
pub struct Forest {
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
}

impl Forest {
    /// Builds a forest from a parent assignment.
    ///
    /// # Panics
    ///
    /// Panics if the parent pointers contain a cycle.
    pub fn from_parents(parent: Vec<Option<NodeId>>) -> Forest {
        let n = parent.len();
        let mut children = vec![Vec::new(); n];
        for (i, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                children[p.index()].push(NodeId::new(i));
            }
        }
        let forest = Forest { parent, children };
        assert!(forest.is_acyclic(), "parent pointers contain a cycle");
        forest
    }

    fn is_acyclic(&self) -> bool {
        let n = self.parent.len();
        // Follow parent pointers with a step budget of n.
        for start in 0..n {
            let mut v = NodeId::new(start);
            let mut steps = 0usize;
            while let Some(p) = self.parent[v.index()] {
                v = p;
                steps += 1;
                if steps > n {
                    return false;
                }
            }
        }
        true
    }

    /// Number of nodes covered by the forest's node universe.
    pub fn n(&self) -> usize {
        self.parent.len()
    }

    /// Parent of `v` in the forest.
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.index()]
    }

    /// Children of `v` in ascending index order.
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v.index()]
    }

    /// Number of edges in the forest.
    pub fn edge_count(&self) -> usize {
        self.parent.iter().filter(|p| p.is_some()).count()
    }

    /// All tree roots that have at least one child.
    pub fn nontrivial_roots(&self) -> Vec<NodeId> {
        (0..self.n())
            .map(NodeId::new)
            .filter(|&v| self.parent(v).is_none() && !self.children(v).is_empty())
            .collect()
    }
}

/// Partitions the edges of `graph` into rooted spanning forests.
///
/// Repeatedly extracts a maximal spanning forest of the remaining edges until
/// none are left. The number of forests equals the graph's arboricity up to a
/// factor of 2 (each extraction removes a spanning forest, and any graph with
/// arboricity `a` loses at least a `1/a` fraction of edges per round in the
/// dense parts). For greedy (2k−1)-spanners the count is O(n^{1/k}).
///
/// # Example
///
/// ```
/// use wakeup_graph::{generators, algo};
/// let g = generators::cycle(6)?;
/// let forests = algo::forest_decomposition(&g);
/// assert_eq!(forests.len(), 2); // a cycle is two forests
/// let total: usize = forests.iter().map(|f| f.edge_count()).sum();
/// assert_eq!(total, g.m());
/// # Ok::<(), wakeup_graph::GraphError>(())
/// ```
pub fn forest_decomposition(graph: &Graph) -> Vec<Forest> {
    let n = graph.n();
    // The shrinking edge multiset, flat: node v's remaining neighbors are
    // `flat[start[v]..start[v] + live[v]]`. Removal swaps with the last live
    // slot (exactly `Vec::swap_remove`, preserving the traversal order the
    // committed goldens pin) without per-node allocations.
    let mut start = vec![0usize; n + 1];
    for v in 0..n {
        start[v + 1] = start[v] + graph.neighbors(NodeId::new(v)).len();
    }
    let mut flat: Vec<NodeId> = Vec::with_capacity(start[n]);
    for v in 0..n {
        flat.extend_from_slice(graph.neighbors(NodeId::new(v)));
    }
    let mut live: Vec<u32> = (0..n).map(|v| (start[v + 1] - start[v]) as u32).collect();
    let mut remaining_edges = graph.m();
    let mut forests = Vec::new();
    let mut stack: Vec<NodeId> = Vec::new();
    let mut used_edge: Vec<(NodeId, NodeId)> = Vec::new();
    while remaining_edges > 0 {
        // Extract one maximal spanning forest of the remaining edges by DFS.
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut in_tree = vec![false; n];
        used_edge.clear();
        for root in 0..n {
            if in_tree[root] {
                continue;
            }
            in_tree[root] = true;
            stack.clear();
            stack.push(NodeId::new(root));
            while let Some(v) = stack.pop() {
                let b = start[v.index()];
                for &w in &flat[b..b + live[v.index()] as usize] {
                    if !in_tree[w.index()] {
                        in_tree[w.index()] = true;
                        parent[w.index()] = Some(v);
                        used_edge.push((v, w));
                        stack.push(w);
                    }
                }
            }
        }
        if used_edge.is_empty() {
            // Remaining edges exist but none could be used: impossible, since
            // any remaining edge connects two nodes and the DFS covers all
            // nodes; defend against logic errors rather than looping forever.
            unreachable!("spanning forest extraction made no progress");
        }
        // Remove used edges from the remaining multiset.
        for &(u, v) in &used_edge {
            remove_half_edge(&mut flat, &start, &mut live, u, v);
            remove_half_edge(&mut flat, &start, &mut live, v, u);
            remaining_edges -= 1;
        }
        forests.push(Forest::from_parents(parent));
    }
    forests
}

fn remove_half_edge(flat: &mut [NodeId], start: &[usize], live: &mut [u32], u: NodeId, v: NodeId) {
    let b = start[u.index()];
    let l = live[u.index()] as usize;
    if let Some(pos) = flat[b..b + l].iter().position(|&x| x == v) {
        flat.swap(b + pos, b + l - 1);
        live[u.index()] -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn tree_is_one_forest() {
        let g = generators::balanced_tree(3, 3).unwrap();
        let forests = forest_decomposition(&g);
        assert_eq!(forests.len(), 1);
        assert_eq!(forests[0].edge_count(), g.m());
    }

    #[test]
    fn edges_partitioned_exactly() {
        let g = generators::erdos_renyi_connected(30, 0.3, 11).unwrap();
        let forests = forest_decomposition(&g);
        let mut seen = std::collections::HashSet::new();
        for f in &forests {
            for v in g.nodes() {
                if let Some(p) = f.parent(v) {
                    let key = if v < p { (v, p) } else { (p, v) };
                    assert!(g.has_edge(v, p), "forest edge must exist in graph");
                    assert!(seen.insert(key), "edge appears in two forests");
                }
            }
        }
        assert_eq!(seen.len(), g.m());
    }

    #[test]
    fn complete_graph_forest_count() {
        let g = generators::complete(10).unwrap();
        let forests = forest_decomposition(&g);
        // Arboricity of K_10 is 5; the greedy peeling uses at most ~2x.
        assert!(forests.len() >= 5);
        assert!(forests.len() <= 10, "got {}", forests.len());
    }

    #[test]
    fn children_consistent_with_parents() {
        let g = generators::erdos_renyi_connected(20, 0.4, 13).unwrap();
        for f in forest_decomposition(&g) {
            for v in g.nodes() {
                for &c in f.children(v) {
                    assert_eq!(f.parent(c), Some(v));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cyclic_parents_rejected() {
        let parent = vec![
            Some(NodeId::new(1)),
            Some(NodeId::new(2)),
            Some(NodeId::new(0)),
        ];
        Forest::from_parents(parent);
    }

    #[test]
    fn empty_graph_no_forests() {
        let g = Graph::empty(5);
        assert!(forest_decomposition(&g).is_empty());
    }

    #[test]
    fn nontrivial_roots_excludes_isolated() {
        let g = Graph::from_edges(4, &[(0, 1)]).unwrap();
        let forests = forest_decomposition(&g);
        assert_eq!(forests.len(), 1);
        let roots = forests[0].nontrivial_roots();
        assert_eq!(roots.len(), 1);
    }

    use crate::Graph;
}
