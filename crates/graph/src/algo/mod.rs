//! Graph algorithms used by the wake-up algorithms and the experiments.

mod bfs;
mod components;
mod degeneracy;
mod dfs;
mod distance;
mod forest;
mod girth;
mod spanner;

pub use bfs::{
    bfs_distances, bfs_tree, multi_source_bfs, multi_source_distances, BfsTree, UNREACHABLE,
};
pub use components::{connected_components, is_connected};
pub use degeneracy::{degeneracy, Degeneracy};
pub use dfs::{dfs_preorder, DfsVisit};
pub use distance::{awake_distance, center, diameter, double_sweep_lower_bound, eccentricity};
pub use forest::{forest_decomposition, Forest};
pub use girth::girth;
pub use spanner::{greedy_spanner, verify_spanner_stretch};
