//! Exact girth computation, used to validate the 𝒢ₖ lower-bound family
//! (Fact 1 requires girth ≥ k+5).

use std::collections::VecDeque;

use crate::{Graph, NodeId};

/// Length of the shortest cycle in `graph`, or `None` for a forest.
///
/// Runs BFS from every node; a cycle through the BFS root is detected when an
/// edge closes between two reached nodes. This is the standard `O(n·m)` exact
/// girth algorithm — quadratic but exact, which is what the lower-bound graph
/// validation needs.
///
/// # Example
///
/// ```
/// use wakeup_graph::{generators, algo};
/// assert_eq!(algo::girth(&generators::cycle(9)?), Some(9));
/// assert_eq!(algo::girth(&generators::path(9)?), None);
/// assert_eq!(algo::girth(&generators::complete(4)?), Some(3));
/// # Ok::<(), wakeup_graph::GraphError>(())
/// ```
pub fn girth(graph: &Graph) -> Option<usize> {
    let n = graph.n();
    let mut best: Option<usize> = None;
    let mut dist = vec![usize::MAX; n];
    let mut parent = vec![usize::MAX; n];
    for root in 0..n {
        dist.iter_mut().for_each(|d| *d = usize::MAX);
        parent.iter_mut().for_each(|p| *p = usize::MAX);
        dist[root] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(NodeId::new(root));
        while let Some(v) = queue.pop_front() {
            let dv = dist[v.index()];
            if let Some(b) = best {
                // No shorter cycle through this root can be found once we are
                // beyond half the best girth.
                if 2 * dv >= b {
                    break;
                }
            }
            for &w in graph.neighbors(v) {
                if dist[w.index()] == usize::MAX {
                    dist[w.index()] = dv + 1;
                    parent[w.index()] = v.index();
                    queue.push_back(w);
                } else if parent[v.index()] != w.index() {
                    // Non-tree edge: the cycle through root has length
                    // dist(v) + dist(w) + 1. This may overestimate for cycles
                    // not through the root, but every shortest cycle is found
                    // exactly when rooting at one of its vertices.
                    let cycle = dv + dist[w.index()] + 1;
                    if best.is_none_or(|b| cycle < b) {
                        best = Some(cycle);
                    }
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn tree_has_no_cycle() {
        let g = generators::balanced_tree(2, 4).unwrap();
        assert_eq!(girth(&g), None);
    }

    #[test]
    fn triangle() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_eq!(girth(&g), Some(3));
    }

    #[test]
    fn even_cycle() {
        assert_eq!(girth(&generators::cycle(12).unwrap()), Some(12));
    }

    #[test]
    fn complete_bipartite_girth_four() {
        let g = generators::complete_bipartite(3, 3).unwrap();
        assert_eq!(girth(&g), Some(4));
    }

    #[test]
    fn hypercube_girth_four() {
        let g = generators::hypercube(4).unwrap();
        assert_eq!(girth(&g), Some(4));
    }

    #[test]
    fn pendant_edges_do_not_change_girth() {
        // A 5-cycle with a pendant path attached.
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 5), (5, 6)])
            .unwrap();
        assert_eq!(girth(&g), Some(5));
    }

    #[test]
    fn two_cycles_takes_min() {
        // A triangle and a separate 4-cycle.
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (5, 6), (6, 3)])
            .unwrap();
        assert_eq!(girth(&g), Some(3));
    }

    use crate::Graph;
}
