//! Degeneracy (k-core) ordering — the certificate for forest-decomposition
//! sizes: every graph decomposes into at most `2·degeneracy` forests, and
//! arboricity ≥ ⌈degeneracy / 2⌉, so the Theorem 6 advice bound
//! O(n^{1/k} log² n) can be checked against a computable graph parameter.

use crate::{Graph, NodeId};

/// Result of the degeneracy computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degeneracy {
    /// The degeneracy d: every subgraph has a node of degree ≤ d.
    pub value: usize,
    /// A degeneracy ordering (each node has ≤ d neighbors later in it).
    pub order: Vec<NodeId>,
}

/// Computes the degeneracy and a degeneracy ordering in O(n + m) via the
/// bucketed peeling algorithm (Matula–Beck).
///
/// # Example
///
/// ```
/// use wakeup_graph::{algo, generators};
/// let tree = generators::balanced_tree(3, 3)?;
/// assert_eq!(algo::degeneracy(&tree).value, 1); // forests are 1-degenerate
/// let k5 = generators::complete(5)?;
/// assert_eq!(algo::degeneracy(&k5).value, 4);
/// # Ok::<(), wakeup_graph::GraphError>(())
/// ```
pub fn degeneracy(graph: &Graph) -> Degeneracy {
    let n = graph.n();
    if n == 0 {
        return Degeneracy {
            value: 0,
            order: Vec::new(),
        };
    }
    let mut degree: Vec<usize> = (0..n).map(|v| graph.degree(NodeId::new(v))).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    // Buckets of nodes by current degree.
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_deg + 1];
    for (v, &d) in degree.iter().enumerate() {
        buckets[d].push(v);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut value = 0usize;
    let mut cursor = 0usize;
    for _ in 0..n {
        // Find the lowest nonempty bucket; cursor only needs to go back by
        // one per removal, so this stays linear.
        cursor = cursor.min(max_deg);
        loop {
            while cursor <= max_deg && buckets[cursor].is_empty() {
                cursor += 1;
            }
            let candidate = buckets[cursor].pop().expect("bucket nonempty");
            if removed[candidate] {
                continue;
            }
            if degree[candidate] != cursor {
                // Stale entry; the node lives in a lower bucket now.
                continue;
            }
            removed[candidate] = true;
            value = value.max(cursor);
            order.push(NodeId::new(candidate));
            for &w in graph.neighbors(NodeId::new(candidate)) {
                let wi = w.index();
                if !removed[wi] {
                    degree[wi] -= 1;
                    buckets[degree[wi]].push(wi);
                    if degree[wi] < cursor {
                        cursor = degree[wi];
                    }
                }
            }
            break;
        }
    }
    Degeneracy { value, order }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{algo, generators};

    #[test]
    fn forests_are_one_degenerate() {
        for seed in 0..4 {
            let g = generators::random_tree(40, seed).unwrap();
            assert_eq!(degeneracy(&g).value, 1, "seed {seed}");
        }
    }

    #[test]
    fn cycles_are_two_degenerate() {
        assert_eq!(degeneracy(&generators::cycle(15).unwrap()).value, 2);
    }

    #[test]
    fn cliques_are_n_minus_one_degenerate() {
        assert_eq!(degeneracy(&generators::complete(8).unwrap()).value, 7);
    }

    #[test]
    fn empty_and_isolated() {
        assert_eq!(degeneracy(&Graph::empty(0)).value, 0);
        assert_eq!(degeneracy(&Graph::empty(5)).value, 0);
    }

    #[test]
    fn ordering_certifies_the_value() {
        let g = generators::erdos_renyi_connected(50, 0.15, 9).unwrap();
        let d = degeneracy(&g);
        assert_eq!(d.order.len(), 50);
        // Every node has at most `value` neighbors later in the order.
        let pos: std::collections::HashMap<NodeId, usize> =
            d.order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for &v in &d.order {
            let later = g.neighbors(v).iter().filter(|w| pos[w] > pos[&v]).count();
            assert!(
                later <= d.value,
                "node {v} has {later} later neighbors > {}",
                d.value
            );
        }
    }

    #[test]
    fn forest_decomposition_bounded_by_degeneracy() {
        // Arboricity ≤ degeneracy, and the greedy peeling decomposition uses
        // at most ~2·arboricity forests.
        for seed in [3u64, 7, 11] {
            let g = generators::erdos_renyi_connected(40, 0.3, seed).unwrap();
            let d = degeneracy(&g).value;
            let forests = algo::forest_decomposition(&g).len();
            assert!(
                forests <= 2 * d + 1,
                "seed {seed}: {forests} forests exceeds 2·degeneracy + 1 = {}",
                2 * d + 1
            );
        }
    }

    #[test]
    fn spanner_degeneracy_shrinks_with_k() {
        let g = generators::complete(60).unwrap();
        let d2 = degeneracy(&algo::greedy_spanner(&g, 2)).value;
        let d_full = degeneracy(&g).value;
        assert!(d2 < d_full / 2, "spanner degeneracy {d2} vs full {d_full}");
    }
}
