//! Greedy multiplicative spanners (Althöfer et al.), the substrate of the
//! Theorem 6 advising scheme.

use std::collections::VecDeque;

use crate::{Graph, GraphBuilder, NodeId};

/// Computes a greedy (2k−1)-spanner of `graph`.
///
/// Edges are scanned in canonical order; an edge `{u, v}` joins the spanner
/// iff the current spanner distance between `u` and `v` exceeds `2k − 1`.
/// The result has at most `n^{1+1/k}` edges up to constants (girth argument)
/// and multiplicative stretch `2k − 1`.
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// # Example
///
/// ```
/// use wakeup_graph::{generators, algo};
/// let g = generators::complete(20)?;
/// let s = algo::greedy_spanner(&g, 2); // stretch 3
/// assert!(s.m() < g.m());
/// # Ok::<(), wakeup_graph::GraphError>(())
/// ```
pub fn greedy_spanner(graph: &Graph, k: usize) -> Graph {
    assert!(k >= 1, "spanner parameter k must be positive");
    let stretch = 2 * k - 1;
    let n = graph.n();
    let mut builder = GraphBuilder::new(n);
    // Adjacency of the growing spanner for bounded-depth BFS probes.
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut dist = vec![usize::MAX; n];
    let mut touched: Vec<usize> = Vec::new();
    for &(u, v) in graph.edges() {
        // Bounded BFS from u up to depth `stretch` inside the spanner.
        let within = {
            dist[u.index()] = 0;
            touched.push(u.index());
            let mut queue = VecDeque::new();
            queue.push_back(u);
            let mut found = false;
            'bfs: while let Some(x) = queue.pop_front() {
                let dx = dist[x.index()];
                if dx >= stretch {
                    break;
                }
                for &y in &adj[x.index()] {
                    if dist[y.index()] == usize::MAX {
                        dist[y.index()] = dx + 1;
                        touched.push(y.index());
                        if y == v {
                            found = true;
                            break 'bfs;
                        }
                        queue.push_back(y);
                    }
                }
            }
            for &t in &touched {
                dist[t] = usize::MAX;
            }
            touched.clear();
            found
        };
        if !within {
            builder
                .add_edge(u.index(), v.index())
                .expect("spanner edges come from a valid graph");
            adj[u.index()].push(v);
            adj[v.index()].push(u);
        }
    }
    builder.build()
}

/// Verifies the (2k−1)-stretch property of `spanner` with respect to `graph`,
/// returning the worst observed stretch over all graph edges.
///
/// This is the natural certificate: multiplicative stretch over all pairs is
/// attained on edges.
pub fn verify_spanner_stretch(graph: &Graph, spanner: &Graph) -> Option<f64> {
    let mut worst: f64 = 0.0;
    for v in graph.nodes() {
        let d = super::bfs::bfs_distances(spanner, v);
        for &w in graph.neighbors(v) {
            if d[w.index()] == usize::MAX {
                return None;
            }
            worst = worst.max(d[w.index()] as f64);
        }
    }
    Some(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{algo, generators};

    #[test]
    fn k1_spanner_is_the_graph() {
        let g = generators::erdos_renyi_connected(25, 0.3, 1).unwrap();
        let s = greedy_spanner(&g, 1); // stretch 1: keep every edge
        assert_eq!(s.m(), g.m());
    }

    #[test]
    fn stretch_respected() {
        for k in [2usize, 3, 4] {
            let g = generators::erdos_renyi_connected(40, 0.25, 42).unwrap();
            let s = greedy_spanner(&g, k);
            let worst = verify_spanner_stretch(&g, &s).expect("spanner spans");
            assert!(
                worst <= (2 * k - 1) as f64,
                "stretch {worst} exceeds {} for k={k}",
                2 * k - 1
            );
        }
    }

    #[test]
    fn spanner_connected_when_graph_connected() {
        let g = generators::erdos_renyi_connected(50, 0.2, 7).unwrap();
        let s = greedy_spanner(&g, 3);
        assert!(algo::is_connected(&s));
    }

    #[test]
    fn spanner_girth_exceeds_stretch() {
        // The greedy invariant: the spanner has girth > 2k, hence few edges.
        let g = generators::complete(30).unwrap();
        let k = 2;
        let s = greedy_spanner(&g, k);
        if let Some(girth) = algo::girth(&s) {
            assert!(girth > 2 * k, "girth {girth} should exceed {}", 2 * k);
        }
    }

    #[test]
    fn complete_graph_sparsifies() {
        let g = generators::complete(40).unwrap();
        let s = greedy_spanner(&g, 3);
        // K_n with stretch 5 keeps far fewer than n^2/2 edges.
        assert!(
            s.m() < g.m() / 4,
            "spanner m = {}, graph m = {}",
            s.m(),
            g.m()
        );
    }

    #[test]
    fn tree_is_its_own_spanner() {
        let g = generators::balanced_tree(2, 5).unwrap();
        let s = greedy_spanner(&g, 3);
        assert_eq!(s.m(), g.m());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_k_panics() {
        greedy_spanner(&Graph::empty(1), 0);
    }

    use crate::Graph;
}
