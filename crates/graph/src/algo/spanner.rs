//! Greedy multiplicative spanners (Althöfer et al.), the substrate of the
//! Theorem 6 advising scheme.

use crate::{Graph, GraphBuilder, NodeId};

/// Computes a greedy (2k−1)-spanner of `graph`.
///
/// Edges are scanned in canonical order; an edge `{u, v}` joins the spanner
/// iff the current spanner distance between `u` and `v` exceeds `2k − 1`.
/// The result has at most `n^{1+1/k}` edges up to constants (girth argument)
/// and multiplicative stretch `2k − 1`.
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// # Example
///
/// ```
/// use wakeup_graph::{generators, algo};
/// let g = generators::complete(20)?;
/// let s = algo::greedy_spanner(&g, 2); // stretch 3
/// assert!(s.m() < g.m());
/// # Ok::<(), wakeup_graph::GraphError>(())
/// ```
pub fn greedy_spanner(graph: &Graph, k: usize) -> Graph {
    assert!(k >= 1, "spanner parameter k must be positive");
    let stretch = 2 * k - 1;
    let n = graph.n();
    let mut builder = GraphBuilder::new(n);
    // Adjacency of the growing spanner for bounded-depth search probes, laid
    // out flat: node x's spanner degree never exceeds its graph degree, so
    // the graph's degree prefix sums give fixed slot capacities and the
    // whole structure is one contiguous allocation.
    let mut start = vec![0usize; n + 1];
    for x in 0..n {
        start[x + 1] = start[x] + graph.neighbors(NodeId::new(x)).len();
    }
    let mut flat: Vec<NodeId> = vec![NodeId::new(0); start[n]];
    let mut deg = vec![0u32; n];
    // Ball membership is tracked with epoch stamps packed two-per-node in a
    // single word: the high half holds the u-side epoch, the low half the
    // v-side epoch (`stamp[x] >> 32 == epoch_u` means x lies in the current
    // u-ball). One random load answers both membership questions per scanned
    // neighbor, and clearing a ball is an epoch bump rather than a sweep.
    // BFS levels are tracked by the frontier buffers; no distance values are
    // ever needed — only membership.
    let mut stamp = vec![0u64; n];
    let mut epoch_u = 0u64;
    let mut epoch_v = 0u64;
    // Each search side is a flat BFS queue; the current frontier is the
    // window `[lo, hi)` and discovered nodes are appended past `hi`, so a
    // level step is two index updates instead of buffer swaps.
    let mut qu: Vec<NodeId> = Vec::new();
    let mut qv: Vec<NodeId> = Vec::new();
    let (mut u_lo, mut u_hi) = (0usize, 0usize);
    // The u-side ball persists across consecutive probes that share the same
    // endpoint u (the canonical edge list is grouped by u), as long as no
    // edge insertion has changed the spanner in between. Insertions only
    // shrink distances, so a stale ball could under-report reachability and
    // must be discarded.
    let mut cached_u: Option<NodeId> = None;
    let mut ru = 0usize;
    for &(u, v) in graph.edges() {
        // Decide whether spanner-dist(u, v) ≤ 2k − 1 with a *bidirectional*
        // bounded BFS: alternately grow the smaller of two balls around u
        // and v until their radii sum to the stretch. Any scan that touches
        // a node labeled by the opposite side certifies a path of length
        // ≤ r_u + r_v + 1 ≤ stretch; conversely a path of length d ≤ stretch
        // has a midpoint inside both final balls (r_u + r_v = stretch ≥ d),
        // and whichever side labels it second detects the other's label.
        // Both hold for the cached u-ball too: its levels are exact BFS
        // levels of the unchanged spanner, and its radius never exceeds the
        // stretch. The predicate is therefore exactly the unidirectional
        // one, while each probe explores two balls of half the depth — the
        // dominant saving for the Corollary 2 instantiation, where the
        // stretch is 2⌈log₂ n⌉ − 1.
        let within = if deg[u.index()] == 0 || deg[v.index()] == 0 {
            false
        } else {
            if cached_u != Some(u) {
                cached_u = Some(u);
                epoch_u += 1;
                stamp[u.index()] = (stamp[u.index()] & 0xFFFF_FFFF) | (epoch_u << 32);
                qu.clear();
                qu.push(u);
                u_lo = 0;
                u_hi = 1;
                ru = 0;
            }
            if stamp[v.index()] >> 32 == epoch_u {
                // v already inside the cached u-ball (radius ≤ stretch).
                true
            } else {
                epoch_v += 1;
                stamp[v.index()] = (stamp[v.index()] & !0xFFFF_FFFF) | epoch_v;
                qv.clear();
                qv.push(v);
                let (mut v_lo, mut v_hi) = (0usize, 1usize);
                let mut rv = 0usize;
                let mut found = false;
                'probe: while ru + rv < stretch && u_lo < u_hi && v_lo < v_hi {
                    // The u-side's work outlives the probe, so expanding it
                    // is preferred until its frontier is twice the v-side's.
                    if u_hi - u_lo > 2 * (v_hi - v_lo) {
                        // Expand the per-probe v-ball; partial levels are
                        // fine here since the v-state dies with the probe.
                        let mut i = v_lo;
                        while i < v_hi {
                            let x = qv[i];
                            i += 1;
                            let b = start[x.index()];
                            for &y in &flat[b..b + deg[x.index()] as usize] {
                                let s = stamp[y.index()];
                                if s >> 32 == epoch_u {
                                    found = true;
                                    break 'probe;
                                }
                                if s & 0xFFFF_FFFF != epoch_v {
                                    stamp[y.index()] = (s & !0xFFFF_FFFF) | epoch_v;
                                    qv.push(y);
                                }
                            }
                        }
                        v_lo = v_hi;
                        v_hi = qv.len();
                        rv += 1;
                    } else {
                        // Expand the persistent u-ball. Its level invariant
                        // (window = exactly the nodes at radius ru) must
                        // survive for later probes, so a level that meets the
                        // v-ball is completed — never left half-stamped.
                        let mut hit = false;
                        let mut i = u_lo;
                        while i < u_hi {
                            let x = qu[i];
                            i += 1;
                            let b = start[x.index()];
                            for &y in &flat[b..b + deg[x.index()] as usize] {
                                let s = stamp[y.index()];
                                hit |= s & 0xFFFF_FFFF == epoch_v;
                                if s >> 32 != epoch_u {
                                    stamp[y.index()] = (s & 0xFFFF_FFFF) | (epoch_u << 32);
                                    qu.push(y);
                                }
                            }
                        }
                        u_lo = u_hi;
                        u_hi = qu.len();
                        ru += 1;
                        if hit {
                            found = true;
                            break 'probe;
                        }
                    }
                }
                found
            }
        };
        if !within {
            builder
                .add_edge(u.index(), v.index())
                .expect("spanner edges come from a valid graph");
            flat[start[u.index()] + deg[u.index()] as usize] = v;
            deg[u.index()] += 1;
            flat[start[v.index()] + deg[v.index()] as usize] = u;
            deg[v.index()] += 1;
            cached_u = None;
        }
    }
    builder.build()
}

/// Verifies the (2k−1)-stretch property of `spanner` with respect to `graph`,
/// returning the worst observed stretch over all graph edges.
///
/// This is the natural certificate: multiplicative stretch over all pairs is
/// attained on edges.
pub fn verify_spanner_stretch(graph: &Graph, spanner: &Graph) -> Option<f64> {
    let mut worst: f64 = 0.0;
    for v in graph.nodes() {
        let d = super::bfs::bfs_distances(spanner, v);
        for &w in graph.neighbors(v) {
            if d[w.index()] == usize::MAX {
                return None;
            }
            worst = worst.max(d[w.index()] as f64);
        }
    }
    Some(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{algo, generators};

    #[test]
    fn k1_spanner_is_the_graph() {
        let g = generators::erdos_renyi_connected(25, 0.3, 1).unwrap();
        let s = greedy_spanner(&g, 1); // stretch 1: keep every edge
        assert_eq!(s.m(), g.m());
    }

    #[test]
    fn stretch_respected() {
        for k in [2usize, 3, 4] {
            let g = generators::erdos_renyi_connected(40, 0.25, 42).unwrap();
            let s = greedy_spanner(&g, k);
            let worst = verify_spanner_stretch(&g, &s).expect("spanner spans");
            assert!(
                worst <= (2 * k - 1) as f64,
                "stretch {worst} exceeds {} for k={k}",
                2 * k - 1
            );
        }
    }

    #[test]
    fn spanner_connected_when_graph_connected() {
        let g = generators::erdos_renyi_connected(50, 0.2, 7).unwrap();
        let s = greedy_spanner(&g, 3);
        assert!(algo::is_connected(&s));
    }

    #[test]
    fn spanner_girth_exceeds_stretch() {
        // The greedy invariant: the spanner has girth > 2k, hence few edges.
        let g = generators::complete(30).unwrap();
        let k = 2;
        let s = greedy_spanner(&g, k);
        if let Some(girth) = algo::girth(&s) {
            assert!(girth > 2 * k, "girth {girth} should exceed {}", 2 * k);
        }
    }

    #[test]
    fn complete_graph_sparsifies() {
        let g = generators::complete(40).unwrap();
        let s = greedy_spanner(&g, 3);
        // K_n with stretch 5 keeps far fewer than n^2/2 edges.
        assert!(
            s.m() < g.m() / 4,
            "spanner m = {}, graph m = {}",
            s.m(),
            g.m()
        );
    }

    #[test]
    fn tree_is_its_own_spanner() {
        let g = generators::balanced_tree(2, 5).unwrap();
        let s = greedy_spanner(&g, 3);
        assert_eq!(s.m(), g.m());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_k_panics() {
        greedy_spanner(&Graph::empty(1), 0);
    }

    use crate::Graph;
}
