//! Depth-first search (reference traversal used by tests of the distributed
//! DFS algorithm of Theorem 3).

use crate::{Graph, NodeId};

/// One step of a preorder DFS visit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DfsVisit {
    /// The node visited.
    pub node: NodeId,
    /// The node it was discovered from (`None` for the root).
    pub discovered_from: Option<NodeId>,
    /// Preorder index (0 for the root).
    pub order: usize,
}

/// Iterative preorder DFS from `root`, exploring neighbors in ascending index
/// order (matching the deterministic tie-breaking of the distributed DFS).
///
/// Returns the visits in preorder; unreachable nodes do not appear.
///
/// # Example
///
/// ```
/// use wakeup_graph::{generators, algo, NodeId};
/// let g = generators::path(4)?;
/// let visits = algo::dfs_preorder(&g, NodeId::new(0));
/// let order: Vec<usize> = visits.iter().map(|v| v.node.index()).collect();
/// assert_eq!(order, vec![0, 1, 2, 3]);
/// # Ok::<(), wakeup_graph::GraphError>(())
/// ```
pub fn dfs_preorder(graph: &Graph, root: NodeId) -> Vec<DfsVisit> {
    let n = graph.n();
    let mut visited = vec![false; n];
    let mut visits = Vec::new();
    // Stack of (node, discovered_from, next-neighbor cursor).
    let mut stack: Vec<(NodeId, Option<NodeId>, usize)> = vec![(root, None, 0)];
    visited[root.index()] = true;
    visits.push(DfsVisit {
        node: root,
        discovered_from: None,
        order: 0,
    });
    while let Some(&mut (v, _, ref mut cursor)) = stack.last_mut() {
        let nbrs = graph.neighbors(v);
        let mut advanced = false;
        while *cursor < nbrs.len() {
            let w = nbrs[*cursor];
            *cursor += 1;
            if !visited[w.index()] {
                visited[w.index()] = true;
                visits.push(DfsVisit {
                    node: w,
                    discovered_from: Some(v),
                    order: visits.len(),
                });
                stack.push((w, Some(v), 0));
                advanced = true;
                break;
            }
        }
        if !advanced {
            stack.pop();
        }
    }
    visits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn visits_every_reachable_node_once() {
        let g = generators::erdos_renyi_connected(30, 0.2, 7).unwrap();
        let visits = dfs_preorder(&g, NodeId::new(0));
        assert_eq!(visits.len(), 30);
        let mut seen = std::collections::HashSet::new();
        for v in &visits {
            assert!(seen.insert(v.node), "node visited twice: {:?}", v.node);
        }
    }

    #[test]
    fn preorder_indices_sequential() {
        let g = generators::complete(6).unwrap();
        let visits = dfs_preorder(&g, NodeId::new(2));
        for (i, v) in visits.iter().enumerate() {
            assert_eq!(v.order, i);
        }
        assert_eq!(visits[0].node, NodeId::new(2));
        assert_eq!(visits[0].discovered_from, None);
    }

    #[test]
    fn discovery_edges_exist_in_graph() {
        let g = generators::erdos_renyi_connected(25, 0.3, 9).unwrap();
        for v in dfs_preorder(&g, NodeId::new(0)) {
            if let Some(p) = v.discovered_from {
                assert!(g.has_edge(p, v.node));
            }
        }
    }

    #[test]
    fn unreachable_nodes_skipped() {
        let g = crate::Graph::from_edges(4, &[(0, 1)]).unwrap();
        let visits = dfs_preorder(&g, NodeId::new(0));
        assert_eq!(visits.len(), 2);
    }
}
