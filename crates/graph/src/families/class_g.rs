//! The KT0 lower-bound class 𝒢 (Section 2 of the paper).

use crate::{Graph, GraphBuilder, GraphError, NodeId};

/// An instance of the lower-bound class 𝒢.
///
/// The vertex set is `U ∪ V ∪ W` with `|U| = |V| = |W| = n`:
///
/// * nodes `0..n` are `U`,
/// * nodes `n..2n` are the **center** nodes `V` (initially awake),
/// * nodes `2n..3n` are `W` (asleep, degree 1).
///
/// Edges: the perfect matching `{vᵢ, wᵢ}` (the only edges incident to `W`)
/// plus the complete bipartite graph between `U` and `V`, giving every center
/// degree `n + 1`. Node `wᵢ` is the *crucial neighbor* of `vᵢ`: it can only
/// be woken by a direct message from `vᵢ`.
///
/// # Example
///
/// ```
/// use wakeup_graph::families::ClassG;
/// let fam = ClassG::new(8)?;
/// assert_eq!(fam.graph().n(), 24);
/// assert_eq!(fam.centers().len(), 8);
/// for (v, w) in fam.crucial_pairs() {
///     assert_eq!(fam.graph().degree(w), 1);
///     assert!(fam.graph().has_edge(v, w));
/// }
/// # Ok::<(), wakeup_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClassG {
    graph: Graph,
    n: usize,
}

impl ClassG {
    /// Builds the class-𝒢 instance with parameter `n` (so `3n` nodes).
    ///
    /// # Errors
    ///
    /// Fails for `n == 0`.
    pub fn new(n: usize) -> Result<ClassG, GraphError> {
        if n == 0 {
            return Err(GraphError::InvalidSize {
                reason: "class G requires n >= 1".into(),
            });
        }
        let mut b = GraphBuilder::new(3 * n);
        // Complete bipartite U x V.
        for u in 0..n {
            for v in 0..n {
                b.add_edge(u, n + v)?;
            }
        }
        // Perfect matching V - W.
        for i in 0..n {
            b.add_edge(n + i, 2 * n + i)?;
        }
        Ok(ClassG {
            graph: b.build(),
            n,
        })
    }

    /// The underlying graph on `3n` nodes.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The family parameter `n` (a third of the node count).
    pub fn parameter(&self) -> usize {
        self.n
    }

    /// The `U`-side nodes.
    pub fn u_side(&self) -> Vec<NodeId> {
        (0..self.n).map(NodeId::new).collect()
    }

    /// The center nodes `V` — the paper's initially-awake set.
    pub fn centers(&self) -> Vec<NodeId> {
        (self.n..2 * self.n).map(NodeId::new).collect()
    }

    /// The sleeping matched nodes `W`.
    pub fn w_side(&self) -> Vec<NodeId> {
        (2 * self.n..3 * self.n).map(NodeId::new).collect()
    }

    /// The crucial pairs `(vᵢ, wᵢ)`.
    pub fn crucial_pairs(&self) -> Vec<(NodeId, NodeId)> {
        (0..self.n)
            .map(|i| (NodeId::new(self.n + i), NodeId::new(2 * self.n + i)))
            .collect()
    }

    /// The crucial neighbor of a center node, or `None` if `v` is not a
    /// center.
    pub fn crucial_neighbor(&self, v: NodeId) -> Option<NodeId> {
        let i = v.index();
        if (self.n..2 * self.n).contains(&i) {
            Some(NodeId::new(i + self.n))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn structure_matches_paper() {
        let fam = ClassG::new(6).unwrap();
        let g = fam.graph();
        assert_eq!(g.n(), 18);
        // m = n^2 (bipartite core) + n (matching).
        assert_eq!(g.m(), 36 + 6);
        for &v in &fam.centers() {
            assert_eq!(g.degree(v), 7, "centers have degree n + 1");
        }
        for &w in &fam.w_side() {
            assert_eq!(g.degree(w), 1, "W nodes have degree 1");
        }
        for &u in &fam.u_side() {
            assert_eq!(g.degree(u), 6, "U nodes connect to all centers");
        }
    }

    #[test]
    fn crucial_pairs_are_matching() {
        let fam = ClassG::new(5).unwrap();
        let mut seen_w = std::collections::HashSet::new();
        for (v, w) in fam.crucial_pairs() {
            assert!(fam.graph().has_edge(v, w));
            assert!(seen_w.insert(w), "matching must be injective");
            assert_eq!(fam.crucial_neighbor(v), Some(w));
        }
        assert_eq!(fam.crucial_neighbor(NodeId::new(0)), None);
    }

    #[test]
    fn connected() {
        let fam = ClassG::new(4).unwrap();
        assert!(algo::is_connected(fam.graph()));
    }

    #[test]
    fn awake_distance_from_centers_is_one() {
        // Waking all centers dominates the graph: U and W are one hop away.
        let fam = ClassG::new(7).unwrap();
        let rho = algo::awake_distance(fam.graph(), &fam.centers()).unwrap();
        assert_eq!(rho, 1);
    }

    #[test]
    fn zero_parameter_rejected() {
        assert!(ClassG::new(0).is_err());
    }
}
