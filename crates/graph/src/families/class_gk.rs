//! The KT1 lower-bound class 𝒢ₖ (Section 2.2 of the paper).

use crate::generators::random_bipartite_regular;
use crate::{Graph, GraphBuilder, GraphError, NodeId};

/// An instance of the lower-bound class 𝒢ₖ.
///
/// Layout matches [`super::ClassG`] (`U` = `0..n`, centers `V` = `n..2n`,
/// `W` = `2n..3n`, matching `vᵢ—wᵢ`), but the `U × V` core is an
/// approximately `d`-regular bipartite graph with `d ≈ n^{1/k}` and girth at
/// least `k + 5` (Fact 1). The paper uses Lazebnik–Ustimenko graphs; we use a
/// seeded greedy girth-constrained generator instead (see DESIGN.md), and
/// [`ClassGk::core_deficit`] reports how far from exact regularity the greedy
/// construction landed.
///
/// # Example
///
/// ```
/// use wakeup_graph::{families::ClassGk, algo};
/// let fam = ClassGk::new(3, 4, 7)?; // k = 3, q = 4 => n = 64
/// assert_eq!(fam.n_parameter(), 64);
/// let girth = algo::girth(fam.graph()).expect("the core has cycles");
/// assert!(girth >= 3 + 5);
/// # Ok::<(), wakeup_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClassGk {
    graph: Graph,
    n: usize,
    k: usize,
    d: usize,
    core_deficit: usize,
}

impl ClassGk {
    /// Builds a 𝒢ₖ instance with parameters `k` (odd, ≥ 3) and `q` (the
    /// paper's prime power; any integer ≥ 2 works for the generator), so that
    /// `n = q^k` and the core degree is `d = q = n^{1/k}`.
    ///
    /// # Errors
    ///
    /// Fails if `k < 3`, `k` is even, `q < 2`, or `q^k` overflows practical
    /// sizes (n capped at 2^22).
    pub fn new(k: usize, q: usize, seed: u64) -> Result<ClassGk, GraphError> {
        if k < 3 || k.is_multiple_of(2) {
            return Err(GraphError::InvalidSize {
                reason: format!("class Gk requires odd k >= 3, got {k}"),
            });
        }
        if q < 2 {
            return Err(GraphError::InvalidSize {
                reason: "class Gk requires q >= 2".into(),
            });
        }
        let n = q
            .checked_pow(k as u32)
            .filter(|&n| n <= 1 << 22)
            .ok_or_else(|| GraphError::InvalidSize {
                reason: format!("q^k = {q}^{k} too large"),
            })?;
        Self::with_explicit(n, k, q, seed)
    }

    /// Builds a 𝒢ₖ instance with an explicit `n` (not necessarily `q^k`) and
    /// core degree `d`; useful for sweeping n smoothly in experiments.
    ///
    /// # Errors
    ///
    /// Fails if `d > n` or `n == 0`.
    pub fn with_explicit(n: usize, k: usize, d: usize, seed: u64) -> Result<ClassGk, GraphError> {
        if n == 0 {
            return Err(GraphError::InvalidSize {
                reason: "class Gk requires n >= 1".into(),
            });
        }
        if d > n {
            return Err(GraphError::InvalidSize {
                reason: format!("core degree {d} exceeds n = {n}"),
            });
        }
        // Girth floor k + 5, rounded up to even (bipartite graphs only have
        // even cycles).
        let floor = {
            let f = k + 5;
            if f.is_multiple_of(2) {
                f
            } else {
                f + 1
            }
        };
        let core = random_bipartite_regular(n, d, Some(floor), seed)?;
        let mut b = GraphBuilder::new(3 * n);
        for &(x, y) in core.graph.edges() {
            // Core side 0..n is U; side n..2n is V (centers).
            b.add_edge(x.index(), y.index())?;
        }
        for i in 0..n {
            b.add_edge(n + i, 2 * n + i)?;
        }
        Ok(ClassGk {
            graph: b.build(),
            n,
            k,
            d,
            core_deficit: core.deficit,
        })
    }

    /// The underlying graph on `3n` nodes.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The family parameter `n` (= `q^k` for [`ClassGk::new`]).
    pub fn n_parameter(&self) -> usize {
        self.n
    }

    /// The time parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Target core degree `d ≈ n^{1/k}` (centers then have degree `d + 1`).
    pub fn core_degree(&self) -> usize {
        self.d
    }

    /// Total missing degree of the greedy core construction (0 = exactly
    /// regular, matching the paper's construction).
    pub fn core_deficit(&self) -> usize {
        self.core_deficit
    }

    /// The center nodes `V` (initially awake).
    pub fn centers(&self) -> Vec<NodeId> {
        (self.n..2 * self.n).map(NodeId::new).collect()
    }

    /// The sleeping matched nodes `W`.
    pub fn w_side(&self) -> Vec<NodeId> {
        (2 * self.n..3 * self.n).map(NodeId::new).collect()
    }

    /// The crucial pairs `(vᵢ, wᵢ)`.
    pub fn crucial_pairs(&self) -> Vec<(NodeId, NodeId)> {
        (0..self.n)
            .map(|i| (NodeId::new(self.n + i), NodeId::new(2 * self.n + i)))
            .collect()
    }

    /// Validates Fact 1 empirically: center degrees, edge count, and girth.
    ///
    /// Returns a human-readable report; `ok` is false if any property failed.
    pub fn validate_fact1(&self) -> Fact1Report {
        let g = &self.graph;
        let expected_center_degree = self.d + 1;
        let centers = self.centers();
        let center_degree_deficit: usize = centers
            .iter()
            .map(|&v| expected_center_degree.saturating_sub(g.degree(v)))
            .sum();
        let girth = crate::algo::girth(g);
        let girth_floor = self.k + 5;
        let girth_ok = girth.is_none_or(|girth| girth >= girth_floor);
        let min_edges = (self.n as f64) * (self.n as f64).powf(1.0 / self.k as f64);
        let edges_ratio = g.m() as f64 / min_edges;
        Fact1Report {
            center_degree_deficit,
            girth,
            girth_floor,
            girth_ok,
            edges: g.m(),
            edges_ratio,
            core_deficit: self.core_deficit,
        }
    }
}

/// Empirical validation of Fact 1 for a [`ClassGk`] instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Fact1Report {
    /// Total missing degree among centers relative to `d + 1`.
    pub center_degree_deficit: usize,
    /// Measured girth (None for forests, which trivially pass).
    pub girth: Option<usize>,
    /// Required floor `k + 5`.
    pub girth_floor: usize,
    /// Whether the girth requirement holds.
    pub girth_ok: bool,
    /// Total number of edges.
    pub edges: usize,
    /// `m / n^{1+1/k}` — should be Θ(1) for a faithful construction.
    pub edges_ratio: f64,
    /// Deficit inherited from the greedy core generator.
    pub core_deficit: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn rejects_bad_parameters() {
        assert!(ClassGk::new(2, 3, 0).is_err(), "even k");
        assert!(ClassGk::new(1, 3, 0).is_err(), "k too small");
        assert!(ClassGk::new(3, 1, 0).is_err(), "q too small");
        assert!(ClassGk::new(9, 100, 0).is_err(), "overflow");
    }

    #[test]
    fn structure_small() {
        let fam = ClassGk::new(3, 3, 1).unwrap(); // n = 27
        let g = fam.graph();
        assert_eq!(g.n(), 81);
        for &w in &fam.w_side() {
            assert_eq!(g.degree(w), 1);
        }
        for (v, w) in fam.crucial_pairs() {
            assert!(g.has_edge(v, w));
        }
    }

    #[test]
    fn fact1_validation() {
        let fam = ClassGk::new(3, 4, 7).unwrap(); // n = 64, d = 4
        let report = fam.validate_fact1();
        assert!(
            report.girth_ok,
            "girth {:?} below {}",
            report.girth, report.girth_floor
        );
        // Greedy construction should get most of the degree mass in place.
        assert!(
            report.center_degree_deficit <= fam.n_parameter(),
            "excessive deficit: {report:?}"
        );
        assert!(
            report.edges > fam.n_parameter(),
            "core plus matching beats n edges"
        );
    }

    #[test]
    fn crucial_neighbors_only_via_centers() {
        let fam = ClassGk::new(3, 3, 5).unwrap();
        let g = fam.graph();
        for (v, w) in fam.crucial_pairs() {
            assert_eq!(g.neighbors(w), &[v], "w's only neighbor is its center");
        }
    }

    #[test]
    fn girth_meets_floor_for_k5() {
        let fam = ClassGk::new(5, 2, 3).unwrap(); // n = 32, girth floor 10
        if let Some(girth) = algo::girth(fam.graph()) {
            assert!(girth >= 10, "girth {girth}");
        }
    }

    #[test]
    fn explicit_constructor_smooth_n() {
        let fam = ClassGk::with_explicit(50, 3, 4, 11).unwrap();
        assert_eq!(fam.n_parameter(), 50);
        assert_eq!(fam.graph().n(), 150);
    }
}
