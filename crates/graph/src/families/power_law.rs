//! The preferential-attachment power-law family.

use crate::generators;
use crate::{Graph, GraphError, NodeId};

/// A Barabási–Albert power-law instance: heavy-tailed degrees around a few
/// hubs, connected by construction.
///
/// The construction is [`generators::preferential_attachment`] — a seed
/// clique on `attach + 1` nodes, then each arriving node attaches to
/// `attach` existing nodes sampled proportionally to degree. The family
/// wrapper pins the parameters next to the graph (scenario specs and tests
/// want them back) and exposes the hub structure the raw generator does not.
///
/// Hub-dominated topologies stress the opposite regime from the torus: a
/// tiny ρ_awk with extreme degree skew, where message bounds driven by `m`
/// diverge sharply from bounds driven by `n`.
///
/// # Example
///
/// ```
/// use wakeup_graph::families::PowerLaw;
/// let fam = PowerLaw::new(64, 2, 7)?;
/// assert_eq!(fam.graph().n(), 64);
/// assert!(fam.max_degree() > 2 * fam.attach());
/// # Ok::<(), wakeup_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PowerLaw {
    graph: Graph,
    attach: usize,
    seed: u64,
}

impl PowerLaw {
    /// Builds a power-law instance on `n` nodes with `attach` edges per
    /// arriving node.
    ///
    /// # Errors
    ///
    /// Fails for `attach == 0` or `n <= attach + 1` (the seed clique needs
    /// `attach + 1` nodes and at least one node must arrive after it).
    pub fn new(n: usize, attach: usize, seed: u64) -> Result<PowerLaw, GraphError> {
        if n <= attach + 1 {
            return Err(GraphError::InvalidSize {
                reason: format!("power law requires n > attach + 1 = {}", attach + 1),
            });
        }
        Ok(PowerLaw {
            graph: generators::preferential_attachment(n, attach, seed)?,
            attach,
            seed,
        })
    }

    /// The underlying graph on `n` nodes.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Edges attached per arriving node.
    pub fn attach(&self) -> usize {
        self.attach
    }

    /// The generator seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The maximum degree (the biggest hub).
    pub fn max_degree(&self) -> usize {
        (0..self.graph.n())
            .map(|v| self.graph.degree(NodeId::new(v)))
            .max()
            .unwrap_or(0)
    }

    /// Nodes sorted by descending degree — the hubs first.
    pub fn hubs(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = (0..self.graph.n()).map(NodeId::new).collect();
        nodes.sort_by_key(|&v| (std::cmp::Reverse(self.graph.degree(v)), v.index()));
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn shape_matches_preferential_attachment() {
        let fam = PowerLaw::new(100, 3, 11).unwrap();
        let g = fam.graph();
        assert_eq!(g.n(), 100);
        assert!(
            algo::is_connected(g),
            "attachment keeps the graph connected"
        );
        // Every arriving node contributes `attach` edges on top of the seed
        // clique (degree-collisions can only remove a handful).
        let clique_edges = 3 * 4 / 2;
        assert!(g.m() <= clique_edges + 97 * 3);
        assert!(g.m() >= clique_edges + 97 * 2);
        // Minimum degree is `attach` (arriving nodes), hubs are much bigger.
        for v in 0..g.n() {
            assert!(g.degree(NodeId::new(v)) >= 3);
        }
        assert!(fam.max_degree() >= 10, "got {}", fam.max_degree());
    }

    #[test]
    fn hubs_are_sorted_by_degree() {
        let fam = PowerLaw::new(60, 2, 5).unwrap();
        let hubs = fam.hubs();
        assert_eq!(hubs.len(), 60);
        for pair in hubs.windows(2) {
            assert!(fam.graph().degree(pair[0]) >= fam.graph().degree(pair[1]));
        }
        // The top hub concentrates attachment mass.
        assert_eq!(fam.graph().degree(hubs[0]), fam.max_degree());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = PowerLaw::new(50, 2, 9).unwrap();
        let b = PowerLaw::new(50, 2, 9).unwrap();
        let c = PowerLaw::new(50, 2, 10).unwrap();
        let edges = |f: &PowerLaw| {
            let g = f.graph();
            (0..g.n())
                .flat_map(|v| {
                    g.neighbors(NodeId::new(v))
                        .iter()
                        .map(move |w| (v, w.index()))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(edges(&a), edges(&b));
        assert_ne!(edges(&a), edges(&c));
    }

    #[test]
    fn degenerate_parameters_rejected() {
        assert!(PowerLaw::new(3, 2, 1).is_err());
        assert!(PowerLaw::new(10, 0, 1).is_err());
    }
}
