//! The wrapping `rows × cols` torus family.

use crate::{Graph, GraphBuilder, GraphError, NodeId};

/// A 4-regular `rows × cols` torus: the grid with both dimensions wrapped.
///
/// Node `(r, c)` is `r * cols + c`, matching the non-wrapping
/// [`crate::generators::grid`] layout so grid and torus scenarios index
/// nodes identically. The wrap edges make every node degree 4 and shrink
/// the diameter to `⌊rows/2⌋ + ⌊cols/2⌋`, which makes the family a clean
/// probe for time-vs-ρ_awk claims: the adversary cannot hide a far corner.
///
/// # Example
///
/// ```
/// use wakeup_graph::families::Torus;
/// let fam = Torus::new(4, 5)?;
/// assert_eq!(fam.graph().n(), 20);
/// for v in 0..20 {
///     assert_eq!(fam.graph().degree(wakeup_graph::NodeId::new(v)), 4);
/// }
/// # Ok::<(), wakeup_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Torus {
    graph: Graph,
    rows: usize,
    cols: usize,
}

impl Torus {
    /// Builds the `rows × cols` torus.
    ///
    /// # Errors
    ///
    /// Fails unless both dimensions are at least 3 — smaller wraps would
    /// duplicate edges (a 2-cycle collapses onto the single grid edge).
    pub fn new(rows: usize, cols: usize) -> Result<Torus, GraphError> {
        if rows < 3 || cols < 3 {
            return Err(GraphError::InvalidSize {
                reason: "torus requires rows >= 3 and cols >= 3".into(),
            });
        }
        let mut b = GraphBuilder::new(rows * cols);
        let at = |r: usize, c: usize| r * cols + c;
        for r in 0..rows {
            for c in 0..cols {
                b.add_edge(at(r, c), at(r, (c + 1) % cols))?;
                b.add_edge(at(r, c), at((r + 1) % rows, c))?;
            }
        }
        Ok(Torus {
            graph: b.build(),
            rows,
            cols,
        })
    }

    /// The underlying graph on `rows * cols` nodes.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The row dimension.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The column dimension.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The node at `(r, c)`.
    pub fn at(&self, r: usize, c: usize) -> NodeId {
        NodeId::new(r * self.cols + c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn four_regular_and_connected() {
        for (rows, cols) in [(3, 3), (3, 7), (5, 4), (8, 8)] {
            let fam = Torus::new(rows, cols).unwrap();
            let g = fam.graph();
            assert_eq!(g.n(), rows * cols);
            assert_eq!(g.m(), 2 * rows * cols, "torus has 2·rows·cols edges");
            for v in 0..g.n() {
                assert_eq!(g.degree(NodeId::new(v)), 4, "{rows}x{cols} node {v}");
            }
            assert!(algo::is_connected(g));
        }
    }

    #[test]
    fn diameter_is_sum_of_half_dimensions() {
        let fam = Torus::new(6, 9).unwrap();
        assert_eq!(algo::diameter(fam.graph()), Some(3 + 4));
    }

    #[test]
    fn wrap_edges_exist() {
        let fam = Torus::new(4, 5).unwrap();
        let g = fam.graph();
        assert!(g.has_edge(fam.at(0, 0), fam.at(0, 4)), "row wrap");
        assert!(g.has_edge(fam.at(0, 0), fam.at(3, 0)), "column wrap");
        assert!(!g.has_edge(fam.at(0, 0), fam.at(1, 1)), "no diagonals");
    }

    #[test]
    fn small_dimensions_rejected() {
        assert!(Torus::new(2, 5).is_err());
        assert!(Torus::new(5, 2).is_err());
        assert!(Torus::new(0, 0).is_err());
    }
}
