//! The paper's lower-bound graph families.
//!
//! * [`ClassG`] — Section 2's class 𝒢 for the KT0 advice lower bound
//!   (Theorem 1): 3n nodes `U ∪ V ∪ W`, a perfect matching `vᵢ—wᵢ`, and a
//!   complete bipartite core `U × V`.
//! * [`ClassGk`] — Section 2.2's class 𝒢ₖ for the KT1 time-restricted lower
//!   bound (Theorem 2): same matching, but the core is an (approximately)
//!   `n^{1/k}`-regular bipartite graph with girth at least `k + 5`.

mod class_g;
mod class_gk;

pub use class_g::ClassG;
pub use class_gk::ClassGk;
