//! The paper's lower-bound graph families.
//!
//! * [`ClassG`] — Section 2's class 𝒢 for the KT0 advice lower bound
//!   (Theorem 1): 3n nodes `U ∪ V ∪ W`, a perfect matching `vᵢ—wᵢ`, and a
//!   complete bipartite core `U × V`.
//! * [`ClassGk`] — Section 2.2's class 𝒢ₖ for the KT1 time-restricted lower
//!   bound (Theorem 2): same matching, but the core is an (approximately)
//!   `n^{1/k}`-regular bipartite graph with girth at least `k + 5`.
//!
//! Plus two benchmark families the scenario corpus sweeps alongside them:
//!
//! * [`Torus`] — the wrapping 4-regular grid (small constant degree, large
//!   diameter).
//! * [`PowerLaw`] — preferential attachment (hub-dominated, tiny diameter).

mod class_g;
mod class_gk;
mod power_law;
mod torus;

pub use class_g::ClassG;
pub use class_gk::ClassGk;
pub use power_law::PowerLaw;
pub use torus::Torus;
