//! Deterministic pseudo-random streams used by every randomized component.
//!
//! The simulator's reproducibility guarantee — identical seeds produce
//! identical executions — must not depend on an external crate's version, so
//! the workspace ships its own small, well-known generators:
//!
//! * [`split_mix64`] for seeding,
//! * [`Xoshiro256`] (xoshiro256++) as the general-purpose stream.
//!
//! Every node of a simulated network receives its own independent stream via
//! [`Xoshiro256::fork`], mirroring the paper's "private source of unbiased
//! random bits"; the adversary and the oracle draw from separate forks, which
//! implements the paper's *oblivious adversary* (it cannot observe node
//! randomness because it never touches the node streams).

/// One step of the SplitMix64 generator; used to derive seed material.
///
/// # Example
///
/// ```
/// let mut state = 42u64;
/// let a = wakeup_graph::rng::split_mix64(&mut state);
/// let b = wakeup_graph::rng::split_mix64(&mut state);
/// assert_ne!(a, b);
/// ```
pub fn split_mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256++ pseudo-random stream.
///
/// # Example
///
/// ```
/// use wakeup_graph::rng::Xoshiro256;
/// let mut a = Xoshiro256::seed_from(7);
/// let mut b = Xoshiro256::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // reproducible
/// let mut c = a.fork(1);
/// let mut d = a.fork(2);
/// assert_ne!(c.next_u64(), d.next_u64()); // independent forks
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a stream from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from(seed: u64) -> Xoshiro256 {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = split_mix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway for clarity.
        if s.iter().all(|&x| x == 0) {
            s[0] = 0x1;
        }
        Xoshiro256 { s }
    }

    /// Derives an independent stream keyed by `stream_id`.
    ///
    /// Forking does not advance `self`, so the set of forks taken from a
    /// generator is stable regardless of interleaving with its own draws.
    pub fn fork(&self, stream_id: u64) -> Xoshiro256 {
        let mut mix =
            self.s[0] ^ self.s[1].rotate_left(17) ^ stream_id.wrapping_mul(0xA24B_AED4_963E_E407);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = split_mix64(&mut mix);
        }
        Xoshiro256 { s }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` via Lemire rejection.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires a positive bound");
        // Widening-multiply rejection sampling (unbiased).
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// A uniformly random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut perm: Vec<usize> = (0..n).collect();
        self.shuffle(&mut perm);
        perm
    }

    /// Samples `k` distinct indices from `0..n` (order unspecified).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct values from 0..{n}");
        // Partial Fisher–Yates over an index map keeps this O(k) in space for
        // small k relative to n.
        if k * 4 >= n {
            let mut perm = self.permutation(n);
            perm.truncate(k);
            return perm;
        }
        let mut chosen = std::collections::HashSet::with_capacity(k * 2);
        let mut out = Vec::with_capacity(k);
        while out.len() < k {
            let x = self.index(n);
            if chosen.insert(x) {
                out.push(x);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference values for seed 1234567 from the public-domain SplitMix64
        // reference implementation.
        let mut s = 1234567u64;
        let a = split_mix64(&mut s);
        let b = split_mix64(&mut s);
        assert_ne!(a, b);
        // Determinism across calls with the same starting state.
        let mut s2 = 1234567u64;
        assert_eq!(split_mix64(&mut s2), a);
    }

    #[test]
    fn xoshiro_reproducible() {
        let mut a = Xoshiro256::seed_from(99);
        let mut b = Xoshiro256::seed_from(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_stable_and_distinct() {
        let root = Xoshiro256::seed_from(5);
        let f1 = root.fork(1);
        let f2 = root.fork(2);
        let f1_again = root.fork(1);
        assert_eq!(f1, f1_again);
        assert_ne!(f1, f2);
    }

    #[test]
    fn next_below_in_range() {
        let mut r = Xoshiro256::seed_from(3);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn next_below_zero_panics() {
        Xoshiro256::seed_from(3).next_below(0);
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut r = Xoshiro256::seed_from(11);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = Xoshiro256::seed_from(12);
        for _ in 0..100 {
            assert!(!r.bernoulli(0.0));
            assert!(r.bernoulli(1.0 + 1e-9));
        }
    }

    #[test]
    fn bernoulli_rate_roughly_matches() {
        let mut r = Xoshiro256::seed_from(13);
        let hits = (0..10_000).filter(|_| r.bernoulli(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut r = Xoshiro256::seed_from(14);
        let p = r.permutation(50);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_distinct_properties() {
        let mut r = Xoshiro256::seed_from(15);
        for (n, k) in [(10, 10), (100, 3), (100, 90), (1, 1), (5, 0)] {
            let s = r.sample_distinct(n, k);
            assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), k, "distinct");
            assert!(s.iter().all(|&x| x < n));
        }
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn sample_distinct_too_many_panics() {
        Xoshiro256::seed_from(1).sample_distinct(3, 4);
    }

    #[test]
    fn index_uniformity_rough() {
        let mut r = Xoshiro256::seed_from(21);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[r.index(4)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts = {counts:?}");
        }
    }
}
