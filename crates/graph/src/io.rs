//! Plain-text edge-list serialization, so the CLI and external tools can
//! exchange topologies.
//!
//! Format: an optional header line `n <count>` (required when isolated
//! high-numbered nodes exist), then one `u v` pair per line. Lines starting
//! with `#` and blank lines are ignored.
//!
//! ```text
//! # my network
//! n 5
//! 0 1
//! 1 2
//! 2 3
//! ```

use std::io::{BufRead, Write};

use crate::{Graph, GraphBuilder, GraphError};

/// Parses a graph from edge-list text.
///
/// Without an `n` header, the node count is one past the largest mentioned
/// index.
///
/// # Errors
///
/// Returns [`GraphError::InvalidSize`] for malformed lines and the usual
/// builder errors for bad edges.
///
/// # Example
///
/// ```
/// let g = wakeup_graph::io::parse_edge_list("n 4\n0 1\n1 2\n")?;
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 2);
/// # Ok::<(), wakeup_graph::GraphError>(())
/// ```
pub fn parse_edge_list(text: &str) -> Result<Graph, GraphError> {
    let mut declared_n: Option<usize> = None;
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut max_node = 0usize;
    let mut any_node = false;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let first = parts.next().expect("nonempty line has a token");
        if first == "n" {
            let v = parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| {
                GraphError::InvalidSize {
                    reason: format!("line {}: malformed n header {line:?}", lineno + 1),
                }
            })?;
            declared_n = Some(v);
            continue;
        }
        let u: usize = first.parse().map_err(|_| GraphError::InvalidSize {
            reason: format!("line {}: expected integer, got {first:?}", lineno + 1),
        })?;
        let v: usize =
            parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| GraphError::InvalidSize {
                    reason: format!("line {}: expected `u v`, got {line:?}", lineno + 1),
                })?;
        if parts.next().is_some() {
            return Err(GraphError::InvalidSize {
                reason: format!("line {}: trailing tokens in {line:?}", lineno + 1),
            });
        }
        max_node = max_node.max(u).max(v);
        any_node = true;
        edges.push((u, v));
    }
    let n = declared_n.unwrap_or(if any_node { max_node + 1 } else { 0 });
    let mut b = GraphBuilder::new(n);
    for (u, v) in edges {
        b.add_edge(u, v)?;
    }
    Ok(b.build())
}

/// Reads a graph from any [`BufRead`] source.
///
/// # Errors
///
/// I/O errors are wrapped into [`GraphError::InvalidSize`] with the message;
/// format errors as in [`parse_edge_list`].
pub fn read_edge_list<R: BufRead>(mut reader: R) -> Result<Graph, GraphError> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| GraphError::InvalidSize {
            reason: format!("read failed: {e}"),
        })?;
    parse_edge_list(&text)
}

/// Serializes a graph to edge-list text (with an `n` header so isolated
/// nodes round-trip).
pub fn to_edge_list(graph: &Graph) -> String {
    let mut out = String::with_capacity(16 + 8 * graph.m());
    out.push_str(&format!("n {}\n", graph.n()));
    for &(u, v) in graph.edges() {
        out.push_str(&format!("{} {}\n", u.index(), v.index()));
    }
    out
}

/// Writes a graph to any [`Write`] sink in edge-list format.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_edge_list<W: Write>(graph: &Graph, mut writer: W) -> std::io::Result<()> {
    writer.write_all(to_edge_list(graph).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip_preserves_graph() {
        let g = generators::erdos_renyi_connected(30, 0.2, 5).unwrap();
        let text = to_edge_list(&g);
        let back = parse_edge_list(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn roundtrip_preserves_isolated_nodes() {
        let g = Graph::from_edges(5, &[(0, 1)]).unwrap();
        let back = parse_edge_list(&to_edge_list(&g)).unwrap();
        assert_eq!(back.n(), 5);
        assert_eq!(back.m(), 1);
    }

    #[test]
    fn parses_comments_and_blanks() {
        let g = parse_edge_list("# header\n\n0 1\n# mid\n1 2\n").unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn infers_n_without_header() {
        let g = parse_edge_list("0 5\n").unwrap();
        assert_eq!(g.n(), 6);
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = parse_edge_list("").unwrap();
        assert_eq!(g.n(), 0);
    }

    #[test]
    fn malformed_lines_error() {
        assert!(parse_edge_list("0\n").is_err());
        assert!(parse_edge_list("0 x\n").is_err());
        assert!(parse_edge_list("0 1 2\n").is_err());
        assert!(parse_edge_list("n\n").is_err());
        assert!(parse_edge_list("0 0\n").is_err(), "self loop");
        assert!(parse_edge_list("0 1\n1 0\n").is_err(), "duplicate");
    }

    #[test]
    fn reader_and_writer_roundtrip() {
        let g = generators::cycle(8).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g, back);
    }
}
