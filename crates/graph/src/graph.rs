//! Immutable compressed-sparse-row graph representation.
//!
//! Graphs in this workspace are simple (no self-loops, no multi-edges),
//! undirected, and unweighted, matching the paper's network model. Nodes are
//! identified by dense indices `0..n`; the simulator layers arbitrary
//! polynomial-range IDs on top (the paper's `id(u)`), so topology code never
//! needs to care about ID assignments.

use std::fmt;
use std::sync::OnceLock;

use wakeup_store::{Buf, SectionElem};

/// Dense index of a node in a [`Graph`], in `0..n`.
///
/// `NodeId` is a topological index, not the paper's node *ID*: the simulator
/// assigns (possibly adversarial) integer IDs separately. Keeping the two
/// notions in distinct types prevents an entire class of lower-bound-graph
/// bugs where an ID permutation is accidentally used as an index.
///
/// # Example
///
/// ```
/// use wakeup_graph::NodeId;
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(format!("{v}"), "v3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct NodeId(u32);

// Compile-time witnesses for the SectionElem layout contract below.
const _: () = assert!(std::mem::size_of::<NodeId>() == 4);
const _: () = assert!(std::mem::align_of::<NodeId>() == 4);

// SAFETY: `NodeId` is `repr(transparent)` over `u32` (asserted above), so
// it is padding-free with every bit pattern valid, and its little-endian
// in-memory form equals the store's on-disk `u32` encoding. This is the
// crate's only `unsafe` item; it contains no code.
#[allow(unsafe_code)]
unsafe impl SectionElem for NodeId {
    const WIDTH: u32 = 4;
    const ELEMS: usize = 1;
}

impl NodeId {
    /// Creates a node id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32 range"))
    }

    /// Returns the dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a node id from its raw `u32` representation (the inverse of
    /// [`Self::as_u32`]). Used by the persistent artifact store to rebuild
    /// id buffers from on-disk `u32` sections without widening round trips.
    #[inline]
    pub const fn from_u32(raw: u32) -> Self {
        NodeId(raw)
    }

    /// Raw `u32` representation of this node id.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

/// Errors produced while constructing a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint was `>= n`.
    NodeOutOfRange {
        /// The offending endpoint index.
        node: usize,
        /// Number of nodes in the graph under construction.
        n: usize,
    },
    /// A self-loop `{v, v}` was added.
    SelfLoop {
        /// The node with the attempted self-loop.
        node: usize,
    },
    /// The same undirected edge was added twice.
    DuplicateEdge {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
    /// A generator was asked for an impossible size (for example a cycle on
    /// fewer than three nodes).
    InvalidSize {
        /// Human-readable description of the constraint that failed.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node index {node} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::DuplicateEdge { u, v } => write!(f, "duplicate edge {{{u}, {v}}}"),
            GraphError::InvalidSize { reason } => write!(f, "invalid size: {reason}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An immutable simple undirected graph in CSR form.
///
/// Construct one through [`GraphBuilder`] or [`Graph::from_edges`]. Neighbor
/// lists are sorted, enabling `O(log deg)` adjacency tests.
///
/// # Example
///
/// ```
/// use wakeup_graph::{Graph, NodeId};
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)])?;
/// assert_eq!(g.degree(NodeId::new(1)), 2);
/// assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
/// assert!(!g.has_edge(NodeId::new(0), NodeId::new(2)));
/// # Ok::<(), wakeup_graph::GraphError>(())
/// ```
#[derive(Clone)]
pub struct Graph {
    offsets: Buf<usize>,
    adjacency: Buf<NodeId>,
    edges: EdgeList,
}

/// The canonical `u < v` edge list, in one of two states:
///
/// * **materialized** — built graphs fill `pairs` eagerly (the builder
///   produces them anyway);
/// * **raw** — store-reloaded graphs keep the interleaved on-disk
///   `(u, v, u, v, …)` window and materialize `pairs` lazily on the first
///   [`Graph::edges`] call, keeping the multi-megabyte copy off the
///   mmap-reload hot path (the engines never touch the edge list).
///
/// The lazy copy reproduces the baked order exactly, so equality and
/// re-encoded bytes are unaffected by which state a graph is in.
#[derive(Clone)]
struct EdgeList {
    raw: Buf<NodeId>,
    pairs: OnceLock<Vec<(NodeId, NodeId)>>,
}

impl EdgeList {
    fn materialized(pairs: Vec<(NodeId, NodeId)>) -> EdgeList {
        EdgeList {
            raw: Buf::default(),
            pairs: OnceLock::from(pairs),
        }
    }

    fn from_raw(raw: Buf<NodeId>) -> EdgeList {
        EdgeList {
            raw,
            pairs: OnceLock::new(),
        }
    }

    fn len(&self) -> usize {
        match self.pairs.get() {
            Some(pairs) => pairs.len(),
            None => self.raw.len() / 2,
        }
    }

    fn pairs(&self) -> &[(NodeId, NodeId)] {
        self.pairs
            .get_or_init(|| self.raw.chunks_exact(2).map(|c| (c[0], c[1])).collect())
    }
}

/// Graphs compare by structure; the edge list is materialized on demand
/// (comparisons are test/verify paths, never the reload hot path).
impl PartialEq for Graph {
    fn eq(&self, other: &Graph) -> bool {
        self.offsets == other.offsets
            && self.adjacency == other.adjacency
            && self.edges.pairs() == other.edges.pairs()
    }
}

impl Eq for Graph {}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.n())
            .field("m", &self.m())
            .finish()
    }
}

impl Graph {
    /// Builds a graph with `n` nodes from an edge list.
    ///
    /// # Errors
    ///
    /// Returns an error on out-of-range endpoints, self-loops, or duplicate
    /// edges (in either orientation).
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Graph, GraphError> {
        let mut builder = GraphBuilder::new(n);
        for &(u, v) in edges {
            builder.add_edge(u, v)?;
        }
        Ok(builder.build())
    }

    /// Returns an edgeless graph on `n` nodes.
    pub fn empty(n: usize) -> Graph {
        GraphBuilder::new(n).build()
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Iterates the `(u, v)` pairs of `self.edges()` without forcing a
    /// store-reloaded edge list to materialize.
    pub fn edge_pairs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        let (raw, pairs) = match self.edges.pairs.get() {
            Some(p) => (&[][..], &p[..]),
            None => (&self.edges.raw[..], &[][..]),
        };
        raw.chunks_exact(2)
            .map(|c| (c[0], c[1]))
            .chain(pairs.iter().copied())
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v.index() + 1] - self.offsets[v.index()]
    }

    /// Sorted slice of the neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adjacency[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// Whether the undirected edge `{u, v}` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Canonical edge list; every edge appears once with `u < v`.
    ///
    /// For store-reloaded graphs the pair vector is materialized (copied
    /// out of the mapping) on first call; prefer [`Self::edge_pairs`] on
    /// paths that only iterate.
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        self.edges.pairs()
    }

    /// Raw CSR parts: `(offsets, adjacency, edges)`.
    ///
    /// `offsets` has `n + 1` entries; the sorted neighbors of node `v` are
    /// `adjacency[offsets[v]..offsets[v + 1]]`; `edges` is the canonical
    /// `u < v` edge list. Exposed for the persistent artifact store, which
    /// serializes these buffers verbatim.
    pub fn csr_parts(&self) -> (&[usize], &[NodeId], &[(NodeId, NodeId)]) {
        (&self.offsets, &self.adjacency, self.edges.pairs())
    }

    /// Rebuilds a graph from CSR parts previously obtained via
    /// [`Self::csr_parts`] (for example, reloaded from the persistent
    /// artifact store).
    ///
    /// Performs light structural validation — offset monotonicity and
    /// bounds, adjacency/edge length consistency — but trusts the caller
    /// for deeper invariants (sortedness, symmetry, canonical edge order),
    /// which the store layer already guarantees via checksums over buffers
    /// produced by a valid `Graph`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidSize`] when the parts are structurally
    /// inconsistent.
    pub fn from_csr_parts(
        offsets: Vec<usize>,
        adjacency: Vec<NodeId>,
        edges: Vec<(NodeId, NodeId)>,
    ) -> Result<Graph, GraphError> {
        validate_csr(&offsets, &adjacency, edges.len())?;
        Ok(Graph {
            offsets: offsets.into(),
            adjacency: adjacency.into(),
            edges: EdgeList::materialized(edges),
        })
    }

    /// As [`Self::from_csr_parts`], but over store-reloaded [`Buf`]
    /// windows — the zero-copy reload entry point. `edges_raw` is the
    /// interleaved `(u, v, u, v, …)` canonical edge list; it stays a raw
    /// window until [`Self::edges`] first materializes it.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidSize`] when the parts are structurally
    /// inconsistent (same checks as [`Self::from_csr_parts`]).
    pub fn from_csr_sections(
        offsets: Buf<usize>,
        adjacency: Buf<NodeId>,
        edges_raw: Buf<NodeId>,
    ) -> Result<Graph, GraphError> {
        if !edges_raw.len().is_multiple_of(2) {
            return Err(GraphError::InvalidSize {
                reason: "interleaved edge list must have even length".to_owned(),
            });
        }
        validate_csr(&offsets, &adjacency, edges_raw.len() / 2)?;
        Ok(Graph {
            offsets,
            adjacency,
            edges: EdgeList::from_raw(edges_raw),
        })
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n()).map(NodeId::new)
    }

    /// Maximum degree over all nodes, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Minimum degree over all nodes, or 0 for the empty graph.
    pub fn min_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// Average degree `2m / n`, or 0.0 for the empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            2.0 * self.m() as f64 / self.n() as f64
        }
    }

    /// Returns the induced subgraph on the same node set containing exactly
    /// the edges for which `keep` returns true.
    pub fn filter_edges(&self, mut keep: impl FnMut(NodeId, NodeId) -> bool) -> Graph {
        let mut builder = GraphBuilder::new(self.n());
        for (u, v) in self.edge_pairs() {
            if keep(u, v) {
                builder
                    .add_edge(u.index(), v.index())
                    .expect("edges of a valid graph remain valid");
            }
        }
        builder.build()
    }

    /// The subgraph induced by `nodes`, with nodes renumbered `0..k` in the
    /// given order; returns the graph and the old-to-new index map.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` contains duplicates or out-of-range ids.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (Graph, Vec<Option<NodeId>>) {
        let mut map: Vec<Option<NodeId>> = vec![None; self.n()];
        for (new, &old) in nodes.iter().enumerate() {
            assert!(
                map[old.index()].is_none(),
                "duplicate node {old} in selection"
            );
            map[old.index()] = Some(NodeId::new(new));
        }
        let mut builder = GraphBuilder::new(nodes.len());
        for (u, v) in self.edge_pairs() {
            if let (Some(nu), Some(nv)) = (map[u.index()], map[v.index()]) {
                builder
                    .add_edge(nu.index(), nv.index())
                    .expect("induced edges stay valid");
            }
        }
        (builder.build(), map)
    }

    /// The complement graph (same nodes, exactly the missing edges).
    pub fn complement(&self) -> Graph {
        let mut builder = GraphBuilder::new(self.n());
        for u in 0..self.n() {
            for v in (u + 1)..self.n() {
                if !self.has_edge(NodeId::new(u), NodeId::new(v)) {
                    builder.add_edge(u, v).expect("complement edges valid");
                }
            }
        }
        builder.build()
    }
}

/// Structural CSR validation shared by [`Graph::from_csr_parts`] and
/// [`Graph::from_csr_sections`]: offset monotonicity and bounds,
/// adjacency/edge length consistency. Deeper invariants (sortedness,
/// symmetry, canonical edge order) are trusted from the caller — for the
/// store path they are covered by checksums over buffers produced by a
/// valid `Graph`.
fn validate_csr(
    offsets: &[usize],
    adjacency: &[NodeId],
    edge_count: usize,
) -> Result<(), GraphError> {
    let invalid = |reason: &str| GraphError::InvalidSize {
        reason: reason.to_owned(),
    };
    if offsets.is_empty() || offsets[0] != 0 {
        return Err(invalid("csr offsets must start with 0"));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(invalid("csr offsets must be non-decreasing"));
    }
    if *offsets.last().unwrap() != adjacency.len() {
        return Err(invalid("csr offsets must end at adjacency length"));
    }
    if adjacency.len() != edge_count * 2 {
        return Err(invalid("adjacency length must be twice the edge count"));
    }
    let n = offsets.len() - 1;
    if adjacency.iter().any(|v| v.index() >= n) {
        return Err(invalid("adjacency entry out of range"));
    }
    Ok(())
}

/// Incremental, validating builder for [`Graph`].
///
/// # Example
///
/// ```
/// use wakeup_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 2)?;
/// assert!(b.add_edge(1, 0).is_err()); // duplicate, either orientation
/// let g = b.build();
/// assert_eq!(g.m(), 2);
/// # Ok::<(), wakeup_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32)>,
    seen: std::collections::HashSet<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` nodes.
    pub fn new(n: usize) -> GraphBuilder {
        GraphBuilder {
            n,
            edges: Vec::new(),
            seen: std::collections::HashSet::new(),
        }
    }

    /// Number of nodes the resulting graph will have.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges added so far.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`], [`GraphError::SelfLoop`], or
    /// [`GraphError::DuplicateEdge`] as appropriate. Duplicate detection is
    /// `O(1)` amortized via a hash-set shadow, keeping dense generators
    /// (complete bipartite cores of the lower-bound families) linear in `m`.
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<(), GraphError> {
        if u >= self.n {
            return Err(GraphError::NodeOutOfRange { node: u, n: self.n });
        }
        if v >= self.n {
            return Err(GraphError::NodeOutOfRange { node: v, n: self.n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        let key = if u < v {
            (u as u32, v as u32)
        } else {
            (v as u32, u as u32)
        };
        if !self.seen.insert(key) {
            return Err(GraphError::DuplicateEdge { u, v });
        }
        self.edges.push(key);
        Ok(())
    }

    /// Adds `{u, v}` unless it is already present; self-loops are still
    /// rejected.
    ///
    /// Returns `true` if the edge was inserted.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`].
    pub fn add_edge_if_absent(&mut self, u: usize, v: usize) -> Result<bool, GraphError> {
        match self.add_edge(u, v) {
            Ok(()) => Ok(true),
            Err(GraphError::DuplicateEdge { .. }) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Whether `{u, v}` has been added (in either orientation).
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        let key = if u < v {
            (u as u32, v as u32)
        } else {
            (v as u32, u as u32)
        };
        self.seen.contains(&key)
    }

    /// Finalizes the builder into an immutable CSR graph.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self.n;
        let mut degree = vec![0usize; n];
        for &(u, v) in &self.edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut adjacency = vec![NodeId::default(); acc];
        for &(u, v) in &self.edges {
            adjacency[cursor[u as usize]] = NodeId(v);
            cursor[u as usize] += 1;
            adjacency[cursor[v as usize]] = NodeId(u);
            cursor[v as usize] += 1;
        }
        // Each node's slice is sorted because edges were processed in sorted
        // order of (min, max) endpoints... which does NOT imply per-node
        // sortedness for the higher endpoint, so sort each slice explicitly.
        for v in 0..n {
            adjacency[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        let edges = self
            .edges
            .into_iter()
            .map(|(u, v)| (NodeId(u), NodeId(v)))
            .collect();
        Graph {
            offsets: offsets.into(),
            adjacency: adjacency.into(),
            edges: EdgeList::materialized(edges),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
    }

    #[test]
    fn zero_node_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.nodes().count(), 0);
    }

    #[test]
    fn builder_rejects_self_loop() {
        let mut b = GraphBuilder::new(3);
        assert_eq!(b.add_edge(1, 1), Err(GraphError::SelfLoop { node: 1 }));
    }

    #[test]
    fn builder_rejects_out_of_range() {
        let mut b = GraphBuilder::new(3);
        assert_eq!(
            b.add_edge(0, 3),
            Err(GraphError::NodeOutOfRange { node: 3, n: 3 })
        );
        assert_eq!(
            b.add_edge(7, 0),
            Err(GraphError::NodeOutOfRange { node: 7, n: 3 })
        );
    }

    #[test]
    fn builder_rejects_duplicates_in_both_orientations() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        assert!(matches!(
            b.add_edge(0, 1),
            Err(GraphError::DuplicateEdge { .. })
        ));
        assert!(matches!(
            b.add_edge(1, 0),
            Err(GraphError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn add_edge_if_absent_reports_insertion() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_edge_if_absent(0, 1).unwrap());
        assert!(!b.add_edge_if_absent(1, 0).unwrap());
        assert!(b.add_edge_if_absent(1, 2).unwrap());
        assert_eq!(b.build().m(), 2);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = Graph::from_edges(5, &[(3, 0), (3, 4), (3, 1), (3, 2)]).unwrap();
        let nbrs: Vec<usize> = g
            .neighbors(NodeId::new(3))
            .iter()
            .map(|v| v.index())
            .collect();
        assert_eq!(nbrs, vec![0, 1, 2, 4]);
    }

    #[test]
    fn degrees_and_edges() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
        assert_eq!(g.edges().len(), 4);
        for &(u, v) in g.edges() {
            assert!(u < v, "canonical orientation");
            assert!(g.has_edge(u, v));
            assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn filter_edges_keeps_subset() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let sub = g.filter_edges(|u, _| u.index() != 1);
        assert_eq!(sub.m(), 2);
        assert!(sub.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(!sub.has_edge(NodeId::new(1), NodeId::new(2)));
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let (sub, map) = g.induced_subgraph(&[NodeId::new(1), NodeId::new(2), NodeId::new(4)]);
        assert_eq!(sub.n(), 3);
        // Kept edges: {1,2} only ({4,0} and {3,4} lose an endpoint).
        assert_eq!(sub.m(), 1);
        assert_eq!(map[1], Some(NodeId::new(0)));
        assert_eq!(map[3], None);
        assert!(sub.has_edge(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn induced_subgraph_rejects_duplicates() {
        let g = Graph::empty(3);
        g.induced_subgraph(&[NodeId::new(1), NodeId::new(1)]);
    }

    #[test]
    fn complement_involution() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]).unwrap();
        let c = g.complement();
        assert_eq!(c.m(), 10 - 2);
        assert!(!c.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(c.has_edge(NodeId::new(0), NodeId::new(2)));
        assert_eq!(c.complement(), g);
    }

    #[test]
    fn display_and_debug_nonempty() {
        let v = NodeId::new(2);
        assert_eq!(format!("{v}"), "v2");
        assert_eq!(format!("{v:?}"), "v2");
        let g = Graph::empty(1);
        assert!(format!("{g:?}").contains("Graph"));
    }
}
