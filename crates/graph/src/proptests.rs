//! Property-based tests over the graph substrate: CSR invariants,
//! algorithm cross-checks, and generator contracts on arbitrary inputs.

#![cfg(test)]

use proptest::prelude::*;

use crate::rng::Xoshiro256;
use crate::{algo, generators, Graph, GraphBuilder, NodeId};

/// Strategy: an arbitrary simple graph as (n, deduplicated edge list).
fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    (2usize..50).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..120).prop_map(move |pairs| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in pairs {
                if u != v {
                    let _ = b.add_edge_if_absent(u, v);
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_invariants(g in arbitrary_graph()) {
        // Degree sum = 2m.
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.m());
        // Neighbor lists are sorted, self-loop free, and symmetric.
        for v in g.nodes() {
            let nbrs = g.neighbors(v);
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
            for &w in nbrs {
                prop_assert!(w != v);
                prop_assert!(g.has_edge(w, v));
            }
        }
        // The canonical edge list agrees with adjacency.
        for &(u, v) in g.edges() {
            prop_assert!(u < v);
            prop_assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn bfs_distances_are_metric_like(g in arbitrary_graph(), s in 0usize..50) {
        let n = g.n();
        let source = NodeId::new(s % n);
        let d = algo::bfs_distances(&g, source);
        prop_assert_eq!(d[source.index()], 0);
        // Edge-wise 1-Lipschitz: reachable neighbors differ by at most 1.
        for &(u, v) in g.edges() {
            let (du, dv) = (d[u.index()], d[v.index()]);
            if du != algo::UNREACHABLE && dv != algo::UNREACHABLE {
                prop_assert!(du.abs_diff(dv) <= 1);
            } else {
                prop_assert_eq!(du, dv, "reachability is edge-closed");
            }
        }
    }

    #[test]
    fn components_partition_and_agree_with_bfs(g in arbitrary_graph()) {
        let (labels, k) = algo::connected_components(&g);
        prop_assert!(k >= 1 || g.n() == 0);
        for v in g.nodes() {
            let d = algo::bfs_distances(&g, v);
            for w in g.nodes() {
                let same = labels[v.index()] == labels[w.index()];
                let reachable = d[w.index()] != algo::UNREACHABLE;
                prop_assert_eq!(same, reachable);
            }
        }
    }

    #[test]
    fn girth_witnesses_are_consistent(g in arbitrary_graph()) {
        match algo::girth(&g) {
            None => {
                // A forest: m <= n - #components.
                let (_, k) = algo::connected_components(&g);
                prop_assert!(g.m() + k <= g.n());
            }
            Some(girth) => {
                prop_assert!(girth >= 3);
                // There must be at least `girth` edges.
                prop_assert!(g.m() >= girth);
            }
        }
    }

    #[test]
    fn spanner_stretch_universal(g in arbitrary_graph(), k in 1usize..4) {
        let s = algo::greedy_spanner(&g, k);
        prop_assert!(s.m() <= g.m());
        // Stretch on every edge of g (within components).
        for v in g.nodes() {
            let ds = algo::bfs_distances(&s, v);
            for &w in g.neighbors(v) {
                prop_assert!(ds[w.index()] != algo::UNREACHABLE, "spanner must span");
                prop_assert!(ds[w.index()] < 2 * k);
            }
        }
    }

    #[test]
    fn forest_decomposition_partitions_edges(g in arbitrary_graph()) {
        let forests = algo::forest_decomposition(&g);
        let total: usize = forests.iter().map(|f| f.edge_count()).sum();
        prop_assert_eq!(total, g.m());
        let degen = algo::degeneracy(&g).value;
        prop_assert!(forests.len() <= 2 * degen + 1, "{} forests, degeneracy {}", forests.len(), degen);
    }

    #[test]
    fn degeneracy_bounds(g in arbitrary_graph()) {
        let d = algo::degeneracy(&g);
        prop_assert!(d.value <= g.max_degree());
        // Average-degree lower bound: degeneracy >= avg_degree / 2.
        prop_assert!(
            (d.value as f64) >= g.average_degree() / 2.0 - 1e-9,
            "degeneracy {} below avg/2 = {}",
            d.value,
            g.average_degree() / 2.0
        );
        prop_assert_eq!(d.order.len(), g.n());
    }

    #[test]
    fn multi_source_bfs_is_min_of_singles(g in arbitrary_graph(), seed in 0u64..100) {
        let n = g.n();
        let mut rng = Xoshiro256::seed_from(seed);
        let count = 1 + rng.index(n.min(4));
        let sources: Vec<NodeId> = rng.sample_distinct(n, count).into_iter().map(NodeId::new).collect();
        let multi = algo::multi_source_bfs(&g, &sources);
        let singles: Vec<Vec<usize>> = sources.iter().map(|&s| algo::bfs_distances(&g, s)).collect();
        for v in g.nodes() {
            let expected = singles.iter().map(|d| d[v.index()]).min().unwrap();
            let got = if multi.reached(v) { multi.depth(v) } else { algo::UNREACHABLE };
            prop_assert_eq!(got, expected);
        }
    }

    #[test]
    fn locality_relabeling_is_a_bijection_that_never_hurts_a_path(g in arbitrary_graph()) {
        let rel = crate::relabel::Relabeling::locality(&g);
        prop_assert_eq!(rel.len(), g.n());
        for v in 0..g.n() {
            prop_assert_eq!(rel.to_orig(rel.to_run(v)), v);
            prop_assert_eq!(rel.to_run(rel.to_orig(v)), v);
        }
    }

    #[test]
    fn permute_to_run_then_to_orig_is_identity(to_orig_seed in 0u64..1000, n in 1usize..200) {
        // An arbitrary permutation (Fisher–Yates over a seeded rng), not
        // just RCM output: the round-trip contract is for any bijection
        // the store might hand back.
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let mut rng = Xoshiro256::seed_from(to_orig_seed);
        rng.shuffle(&mut perm);
        let rel = crate::relabel::Relabeling::from_to_orig(perm);
        let original: Vec<usize> = (0..n).collect();
        let mut data = original.clone();
        rel.permute_to_run(&mut data);
        for (run, &orig) in data.iter().enumerate() {
            prop_assert_eq!(orig, rel.to_orig(run));
        }
        rel.permute_to_orig(&mut data);
        prop_assert_eq!(data, original);
    }

    #[test]
    fn edge_list_io_roundtrips(g in arbitrary_graph()) {
        let text = crate::io::to_edge_list(&g);
        let back = crate::io::parse_edge_list(&text).unwrap();
        prop_assert_eq!(g, back);
    }

    #[test]
    fn random_generators_honor_their_contracts(n in 4usize..60, seed in 0u64..500) {
        let t = generators::random_tree(n, seed).unwrap();
        prop_assert_eq!(t.m(), n - 1);
        prop_assert!(algo::is_connected(&t));

        let g = generators::erdos_renyi_connected(n, 0.15, seed).unwrap();
        prop_assert!(algo::is_connected(&g));

        if n % 2 == 0 && n > 4 {
            let r = generators::random_regular(n, 3, seed).unwrap();
            prop_assert!(r.nodes().all(|v| r.degree(v) == 3));
        }
    }
}
