//! Locality-ordered node relabeling (reverse Cuthill–McKee).
//!
//! The engines' hot arrays (channel cursors, wake bits, protocol state) are
//! indexed by dense node/edge ids, so the adversary's arbitrary labeling
//! turns a flood's wave-front into random memory scatter. A [`Relabeling`]
//! is a bijection `orig ↔ run` computed once per graph by a deterministic
//! reverse Cuthill–McKee traversal: BFS from a minimum-degree node with
//! neighbors enqueued in ascending `(degree, id)` order, visit order
//! reversed. Nodes that are close in the graph end up close in run-id
//! space, which keeps the per-tick working set contiguous.
//!
//! The relabeling is a pure function of the topology (ties broken by
//! original id), so a cold rebuild reproduces the baked artifact byte for
//! byte — the store's `--verify` path depends on that.

use std::collections::VecDeque;

use crate::graph::Graph;

/// A bijection between the network's original node ids (`orig`, the space
/// every public input and output uses) and the engine's run-time ids
/// (`run`, the locality-ordered space the hot loops index).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relabeling {
    /// `to_run[orig] = run`.
    to_run: Vec<u32>,
    /// `to_orig[run] = orig`.
    to_orig: Vec<u32>,
}

impl Relabeling {
    /// The reverse Cuthill–McKee ordering of `g`. Deterministic: every
    /// tie (component start, neighbor visit order) is broken by
    /// `(degree, original id)`.
    pub fn locality(g: &Graph) -> Relabeling {
        let n = g.n();
        let mut order: Vec<u32> = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        // Component starts: minimum degree first, then id.
        let mut starts: Vec<u32> = (0..n as u32).collect();
        starts.sort_unstable_by_key(|&v| (g.degree(crate::NodeId::new(v as usize)), v));
        let mut queue: VecDeque<u32> = VecDeque::new();
        let mut nbuf: Vec<u32> = Vec::new();
        for &s in &starts {
            if seen[s as usize] {
                continue;
            }
            seen[s as usize] = true;
            queue.push_back(s);
            while let Some(v) = queue.pop_front() {
                order.push(v);
                nbuf.clear();
                for &w in g.neighbors(crate::NodeId::new(v as usize)) {
                    if !seen[w.index()] {
                        nbuf.push(w.index() as u32);
                    }
                }
                nbuf.sort_unstable_by_key(|&w| (g.degree(crate::NodeId::new(w as usize)), w));
                for &w in &nbuf {
                    seen[w as usize] = true;
                    queue.push_back(w);
                }
            }
        }
        order.reverse();
        Relabeling::from_to_orig(order)
    }

    /// Reassembles a relabeling from its `to_orig` array (the form the
    /// artifact store persists).
    ///
    /// # Panics
    ///
    /// Panics if `to_orig` is not a permutation of `0..len`.
    pub fn from_to_orig(to_orig: Vec<u32>) -> Relabeling {
        let n = to_orig.len();
        let mut to_run = vec![u32::MAX; n];
        for (run, &orig) in to_orig.iter().enumerate() {
            let slot = &mut to_run[orig as usize];
            assert_eq!(*slot, u32::MAX, "duplicate orig id {orig} in relabeling");
            *slot = run as u32;
        }
        Relabeling { to_run, to_orig }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.to_orig.len()
    }

    /// Whether the relabeling covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.to_orig.is_empty()
    }

    /// Whether this is the identity permutation (relabeled execution would
    /// be a no-op; callers skip it).
    pub fn is_identity(&self) -> bool {
        self.to_orig
            .iter()
            .enumerate()
            .all(|(run, &orig)| run as u32 == orig)
    }

    /// Run id of original node `orig`.
    #[inline]
    pub fn to_run(&self, orig: usize) -> usize {
        self.to_run[orig] as usize
    }

    /// Original id of run node `run`.
    #[inline]
    pub fn to_orig(&self, run: usize) -> usize {
        self.to_orig[run] as usize
    }

    /// The raw `to_orig` array (persisted by the artifact store).
    pub fn to_orig_slice(&self) -> &[u32] {
        &self.to_orig
    }

    /// The raw `to_run` array.
    pub fn to_run_slice(&self) -> &[u32] {
        &self.to_run
    }

    /// Reorders an orig-indexed slice into run order in place:
    /// `data[run] = old_data[to_orig(run)]`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len()`.
    pub fn permute_to_run<T>(&self, data: &mut [T]) {
        apply_perm(data, &self.to_orig);
    }

    /// Reorders a run-indexed slice back into original order in place:
    /// `data[orig] = old_data[to_run(orig)]` — the inverse of
    /// [`Relabeling::permute_to_run`].
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len()`.
    pub fn permute_to_orig<T>(&self, data: &mut [T]) {
        apply_perm(data, &self.to_run);
    }
}

/// Applies `data[i] = old_data[perm[i]]` in place by following the
/// permutation's cycles with swaps (O(n) moves, n/8 bytes of scratch).
fn apply_perm<T>(data: &mut [T], perm: &[u32]) {
    assert_eq!(data.len(), perm.len(), "permutation length mismatch");
    let mut visited = vec![0u64; perm.len().div_ceil(64)];
    for start in 0..perm.len() {
        if visited[start / 64] >> (start % 64) & 1 == 1 {
            continue;
        }
        visited[start / 64] |= 1 << (start % 64);
        let mut i = start;
        loop {
            let j = perm[i] as usize;
            if j == start {
                break;
            }
            data.swap(i, j);
            visited[j / 64] |= 1 << (j % 64);
            i = j;
        }
    }
}

/// Mean `|label(u) − label(v)|` over the directed edges of `g` under the
/// original labeling — the locality figure `wakeup bake --stats` reports.
pub fn avg_neighbor_distance(g: &Graph) -> f64 {
    distance_sum(g, |v| v) / (2 * g.m()).max(1) as f64
}

/// As [`avg_neighbor_distance`], but under the run-space labels of `rel`.
pub fn avg_neighbor_distance_relabeled(g: &Graph, rel: &Relabeling) -> f64 {
    distance_sum(g, |v| rel.to_run(v)) / (2 * g.m()).max(1) as f64
}

fn distance_sum(g: &Graph, label: impl Fn(usize) -> usize) -> f64 {
    let mut sum = 0u64;
    for v in g.nodes() {
        let lv = label(v.index());
        for &w in g.neighbors(v) {
            sum += lv.abs_diff(label(w.index())) as u64;
        }
    }
    sum as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn locality_is_a_permutation_and_deterministic() {
        let g = generators::erdos_renyi_connected(200, 0.05, 3).unwrap();
        let a = Relabeling::locality(&g);
        let b = Relabeling::locality(&g);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        for v in 0..200 {
            assert_eq!(a.to_orig(a.to_run(v)), v);
            assert_eq!(a.to_run(a.to_orig(v)), v);
        }
    }

    #[test]
    fn path_graph_relabeling_is_near_identity_bandwidth() {
        // A path in natural order already has bandwidth 1; RCM must not
        // make it worse.
        let g = generators::path(50).unwrap();
        let rel = Relabeling::locality(&g);
        assert!(avg_neighbor_distance_relabeled(&g, &rel) <= 1.0 + 1e-9);
    }

    #[test]
    fn rcm_recovers_locality_of_adversarially_shuffled_grid() {
        // A 40×50 grid in natural order has mean neighbor distance ≈ 20;
        // an adversarial (random) labeling pushes it to Θ(n). RCM must
        // pull a shuffled grid back far below the shuffled figure. (A pure
        // expander is the wrong fixture here — its bandwidth is Θ(n) under
        // *every* labeling, which is exactly why the adversary's labels
        // only hurt on structured topologies.)
        let natural = generators::grid(40, 50).unwrap();
        let mut perm: Vec<usize> = (0..natural.n()).collect();
        let mut rng = crate::rng::Xoshiro256::seed_from(9);
        rng.shuffle(&mut perm);
        let edges: Vec<(usize, usize)> = natural
            .nodes()
            .flat_map(|v| {
                natural
                    .neighbors(v)
                    .iter()
                    .filter(move |w| v.index() < w.index())
                    .map(|w| (perm[v.index()], perm[w.index()]))
                    .collect::<Vec<_>>()
            })
            .collect();
        let shuffled = Graph::from_edges(natural.n(), &edges).unwrap();
        let before = avg_neighbor_distance(&shuffled);
        let rel = Relabeling::locality(&shuffled);
        let after = avg_neighbor_distance_relabeled(&shuffled, &rel);
        assert!(
            after < before / 4.0,
            "RCM should undo most of the shuffle: {before} -> {after}"
        );
    }

    #[test]
    fn disconnected_graphs_are_covered() {
        let g = Graph::from_edges(7, &[(0, 1), (2, 3), (3, 4)]).unwrap();
        let rel = Relabeling::locality(&g);
        assert_eq!(rel.len(), 7);
        let mut seen: Vec<usize> = (0..7).map(|r| rel.to_orig(r)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..7).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "duplicate orig id")]
    fn non_permutation_rejected() {
        Relabeling::from_to_orig(vec![0, 0, 1]);
    }

    #[test]
    fn permute_round_trips_and_matches_definition() {
        // to_orig = [2, 0, 3, 1]: run 0 is orig 2, etc.
        let rel = Relabeling::from_to_orig(vec![2, 0, 3, 1]);
        let mut data = vec!["o0", "o1", "o2", "o3"];
        rel.permute_to_run(&mut data);
        assert_eq!(data, vec!["o2", "o0", "o3", "o1"]);
        rel.permute_to_orig(&mut data);
        assert_eq!(data, vec!["o0", "o1", "o2", "o3"]);
    }
}
