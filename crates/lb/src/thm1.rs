//! Theorem 1 experiment: the advice/message trade-off on class 𝒢.
//!
//! The oracle (which, per Theorem 1, may know everything including the awake
//! set) writes β prefix bits of each center's crucial-port index into its
//! advice. A center then probes, one port at a time, the `≈ (n+1)/2^β`
//! ports consistent with its prefix until the degree-1 crucial neighbor
//! answers. Expected messages: `n · (n+1)/2^{β+1}` probes plus as many
//! replies — the `n²/2^β` shape of Theorem 1's bound. The probing order is
//! round-robin over candidates, so the adversary's uniformly random port
//! assignment makes every candidate equally likely.

use wakeup_graph::families::ClassG;
use wakeup_sim::adversary::WakeSchedule;
use wakeup_sim::advice::AdviceStats;
use wakeup_sim::bits::width_for;
use wakeup_sim::{
    AsyncConfig, AsyncEngine, AsyncProtocol, BitReader, BitStr, Context, Incoming, Network,
    NodeInit, Payload, Port, WakeCause,
};

/// Probe traffic (CONGEST-sized).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeMsg {
    /// Center → candidate port: who are you?
    Probe,
    /// Reply carrying the responder's degree (degree 1 identifies a crucial
    /// `W`-node on class 𝒢).
    Reply {
        /// The responder's degree.
        degree: u64,
    },
}

impl Payload for ProbeMsg {
    fn size_bits(&self) -> usize {
        match self {
            ProbeMsg::Probe => 2,
            ProbeMsg::Reply { degree } => 2 + (64 - degree.max(&1).leading_zeros() as usize),
        }
    }
}

/// The prefix-probing protocol for the needles-in-haystack (𝖭𝖨𝖧) game.
///
/// Centers (recognized by their advice, which starts with a presence bit)
/// probe candidate ports sequentially; every other node answers probes with
/// its degree. A center outputs the crucial port number once found (the
/// 𝖭𝖨𝖧 output convention for KT0).
#[derive(Debug)]
pub struct PrefixProbe {
    candidates: Vec<Port>,
    cursor: usize,
    degree: u64,
    done: bool,
}

impl PrefixProbe {
    fn probe_next(&mut self, ctx: &mut Context<'_, ProbeMsg>) {
        if let Some(&p) = self.candidates.get(self.cursor) {
            ctx.send(p, ProbeMsg::Probe);
        }
    }
}

impl AsyncProtocol for PrefixProbe {
    type Msg = ProbeMsg;

    fn init(init: &NodeInit<'_>) -> Self {
        let mut r = BitReader::new(init.advice);
        let mut candidates = Vec::new();
        if r.read_bool() == Some(true) {
            // Center: the advice carries the β-bit index of the equal-width
            // bucket (over port indices 0..degree) containing the crucial
            // port. Equal-width buckets keep the candidate count at
            // ≈ degree / 2^β regardless of whether degree is a power of two.
            let beta = r.remaining();
            let bucket = r.read_bits(beta).unwrap_or(0) as u128;
            let deg = init.degree as u128;
            let scale = 1u128 << beta.min(64);
            for x in 0..init.degree as u128 {
                if beta == 0 || x * scale / deg == bucket {
                    candidates.push(Port::new(x as usize + 1));
                }
            }
        }
        PrefixProbe {
            candidates,
            cursor: 0,
            degree: init.degree as u64,
            done: false,
        }
    }

    fn on_wake(&mut self, ctx: &mut Context<'_, ProbeMsg>, _cause: WakeCause) {
        self.probe_next(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, ProbeMsg>, from: Incoming, msg: ProbeMsg) {
        match msg {
            ProbeMsg::Probe => {
                ctx.send(
                    from.port,
                    ProbeMsg::Reply {
                        degree: self.degree,
                    },
                );
            }
            ProbeMsg::Reply { degree } => {
                if self.done {
                    return;
                }
                if degree == 1 {
                    self.done = true;
                    ctx.output(from.port.number() as u64);
                } else {
                    self.cursor += 1;
                    self.probe_next(ctx);
                }
            }
        }
    }
}

/// Builds the β-prefix advice for a class-𝒢 network.
///
/// Centers receive `1` followed by the top `β` bits of their crucial port
/// index; everyone else receives the single bit `0`.
pub fn prefix_advice(fam: &ClassG, net: &Network, beta: usize) -> Vec<BitStr> {
    let n3 = net.n();
    let mut advice: Vec<BitStr> = (0..n3)
        .map(|_| {
            let mut s = BitStr::new();
            s.push_bool(false);
            s
        })
        .collect();
    for (v, w) in fam.crucial_pairs() {
        let port = net.ports().port_to(v, w).expect("matching edge");
        let degree = net.graph().degree(v) as u128;
        let width = width_for(degree as u64);
        let x = (port.number() - 1) as u128;
        let mut s = BitStr::new();
        s.push_bool(true);
        let b = beta.min(width);
        if b > 0 {
            let bucket = x * (1u128 << b) / degree;
            s.push_bits(bucket as u64, b);
        }
        advice[v.index()] = s;
    }
    advice
}

/// One measured point of the Theorem 1 trade-off.
#[derive(Debug, Clone)]
pub struct Thm1Point {
    /// The family parameter (3n nodes total).
    pub n: usize,
    /// Advice bits revealed per center.
    pub beta: usize,
    /// Total messages observed.
    pub messages: u64,
    /// The theorem's shape `n² / 2^β` for reference.
    pub predicted_shape: f64,
    /// Advice statistics (max/avg bits per node).
    pub advice: AdviceStats,
    /// Whether every center solved its 𝖭𝖨𝖧 instance.
    pub all_found: bool,
}

/// Runs the Theorem 1 experiment for a single `(n, β)` pair.
pub fn run_point(n: usize, beta: usize, seed: u64) -> Thm1Point {
    let fam = ClassG::new(n).expect("valid family parameter");
    let net = Network::kt0(fam.graph().clone(), seed);
    let advice = prefix_advice(&fam, &net, beta);
    let stats = AdviceStats::measure(&advice);
    let config = AsyncConfig {
        seed: seed ^ 0xABCD,
        advice: Some(std::sync::Arc::new(advice)),
        ..AsyncConfig::default()
    };
    let schedule = WakeSchedule::all_at_zero(&fam.centers());
    let report = AsyncEngine::<PrefixProbe>::new(&net, config).run(&schedule);
    let all_found = fam.crucial_pairs().iter().all(|&(v, w)| {
        report.outputs[v.index()]
            .map(|p| net.ports().neighbor(v, Port::new(p as usize)) == w)
            .unwrap_or(false)
    });
    Thm1Point {
        n,
        beta,
        messages: report.metrics.messages_sent,
        predicted_shape: (n as f64) * (n as f64) / (1u64 << beta.min(62)) as f64,
        advice: stats,
        all_found,
    }
}

/// Sweeps β for a fixed `n`.
pub fn sweep_beta(n: usize, betas: &[usize], seed: u64) -> Vec<Thm1Point> {
    betas
        .iter()
        .map(|&b| run_point(n, b, seed + b as u64))
        .collect()
}

/// Port-usage profile of a Theorem 1 run — the empirical counterpart of the
/// paper's `Smlᵢ` events ("vᵢ sends or receives over at most n/2^β of its
/// ports") and of Lemma 2's claim that at least half the centers are
/// port-frugal when the message budget is met.
#[derive(Debug, Clone)]
pub struct PortUsageProfile {
    /// Ports used per center, one entry per center.
    pub ports_used: Vec<u32>,
    /// The `n/2^β` threshold from the event `Smlᵢ`.
    pub small_threshold: f64,
    /// Fraction of centers at or below the threshold.
    pub small_fraction: f64,
}

/// Measures port usage of the prefix-probe strategy at advice level β.
pub fn port_usage(n: usize, beta: usize, seed: u64) -> PortUsageProfile {
    let fam = ClassG::new(n).expect("valid family parameter");
    let net = Network::kt0(fam.graph().clone(), seed);
    let advice = prefix_advice(&fam, &net, beta);
    let config = AsyncConfig {
        seed: seed ^ 0xABCD,
        advice: Some(std::sync::Arc::new(advice)),
        track_ports: true,
        ..AsyncConfig::default()
    };
    let schedule = WakeSchedule::all_at_zero(&fam.centers());
    let report = AsyncEngine::<PrefixProbe>::new(&net, config).run(&schedule);
    let tracked = report
        .metrics
        .ports_used
        .as_ref()
        .expect("track_ports was enabled in the engine config");
    let ports_used: Vec<u32> = fam.centers().iter().map(|&v| tracked[v.index()]).collect();
    let small_threshold = n as f64 / (1u64 << beta.min(62)) as f64;
    let small = ports_used
        .iter()
        .filter(|&&p| f64::from(p) <= small_threshold.max(1.0))
        .count();
    PortUsageProfile {
        small_fraction: small as f64 / ports_used.len() as f64,
        ports_used,
        small_threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_advice_costs_quadratic_messages() {
        let p = run_point(24, 0, 1);
        assert!(p.all_found);
        // Expected ~ n * (n+1)/2 probes * 2 messages each = n(n+1)/2 * 2.
        let expected = (24.0 * 25.0 / 2.0) * 2.0;
        let ratio = p.messages as f64 / expected;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn full_advice_costs_linear_messages() {
        let n = 24usize;
        let width = width_for((n + 1) as u64);
        let p = run_point(n, width, 2);
        assert!(p.all_found);
        // One probe + one reply per center, plus nothing else.
        assert!(
            p.messages <= 3 * n as u64,
            "messages {} should be linear",
            p.messages
        );
    }

    #[test]
    fn messages_halve_per_advice_bit() {
        let n = 32usize;
        let points = sweep_beta(n, &[0, 1, 2, 3], 7);
        for pair in points.windows(2) {
            assert!(pair[0].all_found && pair[1].all_found);
            let ratio = pair[0].messages as f64 / pair[1].messages as f64;
            assert!(
                (1.4..2.8).contains(&ratio),
                "β {}→{}: ratio {ratio} not ≈ 2",
                pair[0].beta,
                pair[1].beta
            );
        }
    }

    #[test]
    fn advice_stats_reflect_beta() {
        let p = run_point(16, 3, 3);
        // Centers hold 1 + 3 bits; U and W hold 1 bit.
        assert_eq!(p.advice.max_bits, 4);
        assert!(p.advice.avg_bits < 2.5);
    }

    #[test]
    fn lemma2_style_port_frugality() {
        // With β advice bits, probing touches ≈ (n+1)/2^(β+1) ports per
        // center in expectation; well over half the centers stay below the
        // Sml threshold n/2^β (Lemma 2 guarantees ≥ 1/2 under the message
        // budget).
        for beta in [1usize, 2, 3] {
            let profile = port_usage(32, beta, 9);
            assert!(
                profile.small_fraction >= 0.5,
                "β={beta}: only {:.2} of centers were port-frugal (threshold {})",
                profile.small_fraction,
                profile.small_threshold
            );
        }
    }

    #[test]
    fn port_usage_shrinks_with_beta() {
        let max_ports = |beta| {
            port_usage(32, beta, 9)
                .ports_used
                .iter()
                .copied()
                .max()
                .unwrap()
        };
        let wide = max_ports(0);
        let narrow = max_ports(4);
        assert!(
            narrow * 4 < wide,
            "β=4 usage {narrow} should be far below β=0 usage {wide}"
        );
    }

    #[test]
    fn outputs_are_correct_ports() {
        // run_point already validates outputs; assert the flag.
        for seed in 0..3 {
            assert!(run_point(12, 1, seed).all_found, "seed {seed}");
        }
    }
}
