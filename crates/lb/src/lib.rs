//! Empirical witnesses for the paper's two lower bounds.
//!
//! Lower bounds cannot be "run"; what can be run is the best strategy family
//! a bound permits, to confirm that the measured cost tracks the bound's
//! shape:
//!
//! * [`thm1`] — on the KT0 class 𝒢, an oracle that reveals β prefix bits of
//!   each center's crucial port, and centers that probe the remaining
//!   candidates. The measured message count follows `Θ(n² / 2^β)` as β
//!   sweeps — exactly the trade-off Theorem 1 proves unavoidable.
//! * [`fragments`] — the Section 1.4.1 pitfall oracle (port bits hidden in
//!   the neighbors' advice), measured against the prefix family to show why
//!   the proof must, and does, rule it out.
//! * [`thm2`] — on the KT1 class 𝒢ₖ, the time-restricted strategies
//!   (one-round flooding with `Θ(n^{1+1/k})` messages) against the
//!   unrestricted DFS-rank algorithm (`O(n log n)` messages, `Θ(n)` time),
//!   exhibiting the time/message trade-off of Theorem 2; plus the Figure 3
//!   ID-swap demonstration behind Lemmas 5 and 6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fragments;
pub mod thm1;
pub mod thm2;
