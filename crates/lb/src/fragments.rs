//! The Section 1.4.1 pitfall strategy, realized: fragmenting a center's
//! crucial port across its *neighbors'* advice.
//!
//! The Theorem 1 proof must rule out oracles that do not tell `vᵢ` its
//! crucial port directly but hide the bits in the advice of `vᵢ`'s
//! neighbors, who can each ship an arbitrarily long message once contacted
//! ("the oracle could partition the port number for `wᵢ` into Θ(1) pieces
//! and store each piece among a subset of the neighbors of `vᵢ`").
//!
//! This module implements that oracle family so its cost can be *measured*
//! against the prefix-advice family of [`crate::thm1`]:
//!
//! * the oracle gives every `U`-node, for every center, one addressed bit of
//!   that center's crucial port (position + value);
//! * a center probes ports one at a time; each responder returns its
//!   fragment; the center stops as soon as the collected positions cover the
//!   whole port width and then wakes the reconstructed port.
//!
//! Because the port assignment is uniformly random and probing is blind, the
//! center plays coupon collector over the `width ≈ log₂ n` positions:
//! expected probes `Θ(log n · log log n)`, against Θ(n · log log n) *bits of
//! advice per U-node*. Measured side by side with prefix advice this shows
//! the pitfall buys nothing: for the same total advice budget the direct
//! prefix encoding is strictly cheaper — which is the intuition the
//! information-theoretic proof turns into a theorem.

use wakeup_graph::families::ClassG;
use wakeup_sim::adversary::WakeSchedule;
use wakeup_sim::advice::AdviceStats;
use wakeup_sim::bits::width_for;
use wakeup_sim::{
    AsyncConfig, AsyncEngine, AsyncProtocol, BitReader, BitStr, Context, Incoming, Network,
    NodeInit, Payload, Port, WakeCause,
};

/// Fragment-probing traffic (CONGEST-sized).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FragMsg {
    /// Center → neighbor: "I am center index `center`; send my fragment."
    Query {
        /// The querying center's index within V (0-based).
        center: u64,
    },
    /// Neighbor → center: one addressed bit of the crucial port.
    Fragment {
        /// Bit position within the port index.
        position: u8,
        /// The bit.
        bit: bool,
        /// Responder's degree (1 identifies the crucial W-node, which has no
        /// fragment to offer but ends the search immediately).
        degree: u64,
    },
    /// The final wake-up sent to the reconstructed port.
    Wake,
}

impl Payload for FragMsg {
    fn size_bits(&self) -> usize {
        match self {
            FragMsg::Query { center } => 2 + (64 - center.max(&1).leading_zeros() as usize),
            FragMsg::Fragment { degree, .. } => {
                2 + 8 + 1 + (64 - degree.max(&1).leading_zeros() as usize)
            }
            FragMsg::Wake => 2,
        }
    }
}

/// Node behavior under the fragment oracle.
///
/// Centers carry their own V-index and a `width` in their advice; `U`-nodes
/// carry the fragment table (one `(position, bit)` entry per center, ordered
/// by center index).
#[derive(Debug)]
pub struct FragmentProbe {
    /// Some for centers: (center index, port width).
    center: Option<(u64, usize)>,
    /// Fragment table for U nodes: entry i = (position, bit) for center i.
    table: Vec<(u8, bool)>,
    degree: u64,
    /// Collected bits, by position.
    collected: Vec<Option<bool>>,
    next_port: usize,
    done: bool,
}

impl FragmentProbe {
    fn probe_next(&mut self, ctx: &mut Context<'_, FragMsg>) {
        let Some((center, _)) = self.center else {
            return;
        };
        if self.done || self.next_port >= ctx.degree() {
            return;
        }
        self.next_port += 1;
        ctx.send(Port::new(self.next_port), FragMsg::Query { center });
    }

    fn try_finish(&mut self, ctx: &mut Context<'_, FragMsg>) {
        if self.done || self.collected.iter().any(Option::is_none) {
            return;
        }
        let mut x = 0u64;
        for (i, bit) in self.collected.iter().enumerate() {
            if bit.expect("checked complete") {
                x |= 1 << i;
            }
        }
        self.done = true;
        let port = (x as usize + 1).min(ctx.degree());
        ctx.output(port as u64);
        ctx.send(Port::new(port), FragMsg::Wake);
    }
}

impl AsyncProtocol for FragmentProbe {
    type Msg = FragMsg;

    fn init(init: &NodeInit<'_>) -> Self {
        let mut r = BitReader::new(init.advice);
        let mut center = None;
        let mut table = Vec::new();
        match r.read_bool() {
            Some(true) => {
                // Center advice: index + width.
                let idx = r.read_gamma().map_or(0, |v| v - 1);
                let width = r.read_gamma().unwrap_or(1) as usize;
                center = Some((idx, width));
            }
            Some(false) => {
                // U advice: per-center fragment entries.
                while r.remaining() >= 9 {
                    let position = r.read_bits(8).unwrap_or(0) as u8;
                    let bit = r.read_bool().unwrap_or(false);
                    table.push((position, bit));
                }
            }
            None => {}
        }
        let width = center.map_or(0, |(_, w)| w);
        FragmentProbe {
            center,
            table,
            degree: init.degree as u64,
            collected: vec![None; width],
            next_port: 0,
            done: false,
        }
    }

    fn on_wake(&mut self, ctx: &mut Context<'_, FragMsg>, _cause: WakeCause) {
        self.probe_next(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, FragMsg>, from: Incoming, msg: FragMsg) {
        match msg {
            FragMsg::Query { center } => {
                let entry = self.table.get(center as usize).copied();
                let (position, bit) = entry.unwrap_or((0, false));
                ctx.send(
                    from.port,
                    FragMsg::Fragment {
                        position,
                        bit,
                        degree: self.degree,
                    },
                );
            }
            FragMsg::Fragment {
                position,
                bit,
                degree,
            } => {
                if self.done {
                    return;
                }
                if degree == 1 {
                    // Blind luck: the probe hit the crucial neighbor itself.
                    self.done = true;
                    ctx.output(from.port.number() as u64);
                    ctx.send(from.port, FragMsg::Wake);
                    return;
                }
                if let Some(slot) = self.collected.get_mut(position as usize) {
                    *slot = Some(bit);
                }
                self.try_finish(ctx);
                if !self.done {
                    self.probe_next(ctx);
                }
            }
            FragMsg::Wake => {}
        }
    }
}

/// Builds the fragment advice for a class-𝒢 network.
pub fn fragment_advice(fam: &ClassG, net: &Network) -> Vec<BitStr> {
    let mut advice: Vec<BitStr> = (0..net.n()).map(|_| BitStr::new()).collect();
    // Crucial port index (0-based) and width per center.
    let ports: Vec<(u64, usize)> = fam
        .crucial_pairs()
        .iter()
        .map(|&(v, w)| {
            let p = net.ports().port_to(v, w).expect("matching edge");
            let width = width_for(net.graph().degree(v) as u64);
            ((p.number() - 1) as u64, width)
        })
        .collect();
    // Centers: marker + index + width.
    for (i, &v) in fam.centers().iter().enumerate() {
        let s = &mut advice[v.index()];
        s.push_bool(true);
        s.push_gamma(i as u64 + 1);
        s.push_gamma(ports[i].1 as u64);
    }
    // U nodes: marker + one (position, bit) entry per center. The position
    // assigned to (u, vᵢ) is u's index modulo the width, so every position
    // appears on ≈ n/width of vᵢ's neighbors.
    for (j, &u) in fam.u_side().iter().enumerate() {
        let s = &mut advice[u.index()];
        s.push_bool(false);
        for &(x, width) in &ports {
            let position = (j % width) as u8;
            s.push_bits(u64::from(position), 8);
            s.push_bool((x >> position) & 1 == 1);
        }
    }
    // W nodes: marker only.
    for &w in &fam.w_side() {
        advice[w.index()].push_bool(false);
    }
    advice
}

/// One measured point of the fragment-family experiment.
#[derive(Debug, Clone)]
pub struct FragmentPoint {
    /// Family parameter.
    pub n: usize,
    /// Total messages.
    pub messages: u64,
    /// Advice statistics.
    pub advice: AdviceStats,
    /// Whether every center reconstructed its crucial port.
    pub all_found: bool,
}

/// Runs the fragment strategy on class 𝒢 with all centers awake.
pub fn run_fragment_point(n: usize, seed: u64) -> FragmentPoint {
    let fam = ClassG::new(n).expect("valid family parameter");
    let net = Network::kt0(fam.graph().clone(), seed);
    let advice = fragment_advice(&fam, &net);
    let stats = AdviceStats::measure(&advice);
    let config = AsyncConfig {
        seed: seed ^ 0xF0F0,
        advice: Some(std::sync::Arc::new(advice)),
        ..AsyncConfig::default()
    };
    let schedule = WakeSchedule::all_at_zero(&fam.centers());
    let report = AsyncEngine::<FragmentProbe>::new(&net, config).run(&schedule);
    let all_found = fam.crucial_pairs().iter().all(|&(v, w)| {
        report.outputs[v.index()]
            .map(|p| net.ports().neighbor(v, Port::new(p as usize)) == w)
            .unwrap_or(false)
    });
    FragmentPoint {
        n,
        messages: report.metrics.messages_sent,
        advice: stats,
        all_found,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thm1;

    #[test]
    fn fragments_reconstruct_every_crucial_port() {
        for seed in 0..3 {
            let p = run_fragment_point(24, seed);
            assert!(p.all_found, "seed {seed}");
        }
    }

    #[test]
    fn messages_are_polylog_per_center() {
        let n = 64usize;
        let p = run_fragment_point(n, 5);
        assert!(p.all_found);
        // Coupon collector over width positions: ~width·ln(width) probes,
        // two messages each, plus the final wake. Generous envelope:
        let width = (64 - (n as u64).leading_zeros()) as f64;
        let bound = (n as f64) * (3.0 * width * width.ln().max(1.0) + 4.0) * 2.0;
        assert!(
            (p.messages as f64) < bound,
            "messages {} above envelope {bound}",
            p.messages
        );
    }

    #[test]
    fn pitfall_is_dominated_by_prefix_advice() {
        // For the same or better message count, the prefix family uses far
        // less advice — the empirical content of the Section 1.4.1
        // discussion.
        let n = 48usize;
        let frag = run_fragment_point(n, 7);
        // Prefix advice with full width: one probe per center.
        let width = wakeup_sim::bits::width_for((n + 1) as u64);
        let prefix = thm1::run_point(n, width, 7);
        assert!(frag.all_found && prefix.all_found);
        assert!(
            prefix.messages <= frag.messages,
            "prefix {} should not exceed fragment {}",
            prefix.messages,
            frag.messages
        );
        assert!(
            prefix.advice.total_bits * 10 < frag.advice.total_bits,
            "prefix advice {} should be far below fragment advice {}",
            prefix.advice.total_bits,
            frag.advice.total_bits
        );
    }

    #[test]
    fn u_nodes_carry_the_advice_mass() {
        let fam = ClassG::new(16).unwrap();
        let net = Network::kt0(fam.graph().clone(), 3);
        let advice = fragment_advice(&fam, &net);
        let u_bits: usize = fam.u_side().iter().map(|&u| advice[u.index()].len()).sum();
        let v_bits: usize = fam.centers().iter().map(|&v| advice[v.index()].len()).sum();
        assert!(u_bits > 10 * v_bits, "u {} vs v {}", u_bits, v_bits);
    }
}
