//! Theorem 2 experiment: the time/message trade-off on class 𝒢ₖ, plus the
//! Figure 3 ID-swap demonstration.
//!
//! Theorem 2 says any `(k+1)`-time algorithm sends `Ω(n^{1+1/k})` messages on
//! 𝒢ₖ even under KT1. The fastest strategy — one-round flooding — indeed
//! sends `Θ(n^{1+1/k})` messages (every center must cover all of its
//! `n^{1/k}+1` ports, since nothing distinguishes the crucial neighbor in
//! one round). Giving up the time restriction, the DFS-rank algorithm of
//! Theorem 3 solves the same instances with `O(n log n)` messages — the gap
//! the theorem proves is inherent, not algorithmic laziness.
//!
//! The [`swap_demo`] reproduces Figure 3's reasoning: a deterministic
//! one-round protocol that contacts only *some* neighbors must behave
//! identically when the IDs of a contacted-neighborhood-preserving pair are
//! swapped, and therefore fails on one of the two instances.

use wakeup_core::dfs_rank::DfsRank;
use wakeup_core::flooding::FloodSync;
use wakeup_graph::families::ClassGk;
use wakeup_sim::adversary::WakeSchedule;
use wakeup_sim::{
    AsyncConfig, AsyncEngine, Context, IdAssignment, Incoming, KnowledgeMode, Network, NodeInit,
    Payload, PortAssignment, SyncConfig, SyncEngine, SyncProtocol, WakeCause, TICKS_PER_UNIT,
};

/// One measured point of the Theorem 2 trade-off.
#[derive(Debug, Clone)]
pub struct Thm2Point {
    /// The family's time parameter `k`.
    pub k: usize,
    /// The family parameter `n` (3n nodes total).
    pub n: usize,
    /// Core degree `d ≈ n^{1/k}`.
    pub d: usize,
    /// Messages of the time-optimal strategy (flooding, 1 round).
    pub flood_messages: u64,
    /// Rounds taken by flooding.
    pub flood_rounds: u64,
    /// Messages of the unrestricted-time DFS-rank algorithm.
    pub dfs_messages: u64,
    /// τ-normalized time taken by DFS-rank.
    pub dfs_time_units: f64,
    /// The theorem's shape `n^{1+1/k}` for reference.
    pub predicted_shape: f64,
}

/// Runs flooding (time-restricted) and DFS-rank (message-light) on the same
/// 𝒢ₖ instance with all centers awake (ρ_awk = 1, the theorem's setting).
pub fn run_point(k: usize, q: usize, seed: u64) -> Thm2Point {
    let fam = ClassGk::new(k, q, seed).expect("valid family parameters");
    run_family_point(&fam, seed)
}

/// As [`run_point`] but over an explicitly-sized family instance.
pub fn run_family_point(fam: &ClassGk, seed: u64) -> Thm2Point {
    let n = fam.n_parameter();
    let centers = fam.centers();
    let schedule = WakeSchedule::all_at_zero(&centers);

    let net_sync = Network::kt1(fam.graph().clone(), seed);
    let flood = SyncEngine::<FloodSync>::new(
        &net_sync,
        SyncConfig {
            seed,
            ..SyncConfig::default()
        },
    )
    .run(&schedule);
    assert!(flood.all_awake, "flooding must wake everyone");
    let flood_rounds = flood.metrics.all_awake_tick.unwrap_or(0) / TICKS_PER_UNIT;

    let net_async = Network::kt1(fam.graph().clone(), seed ^ 0x51);
    let dfs = AsyncEngine::<DfsRank>::new(
        &net_async,
        AsyncConfig {
            seed: seed ^ 0x99,
            ..AsyncConfig::default()
        },
    )
    .run(&schedule);
    assert!(dfs.all_awake, "DFS-rank is Las Vegas");

    Thm2Point {
        k: fam.k(),
        n,
        d: fam.core_degree(),
        flood_messages: flood.metrics.messages_sent,
        flood_rounds,
        dfs_messages: dfs.metrics.messages_sent,
        dfs_time_units: dfs.metrics.time_units(),
        predicted_shape: (n as f64).powf(1.0 + 1.0 / fam.k() as f64),
    }
}

/// A deterministic 1-round KT1 protocol that contacts only the smallest
/// `budget` neighbor IDs — the kind of message-saving strategy Lemmas 5/6
/// show cannot work.
#[derive(Debug)]
pub struct SelectiveProbe {
    targets: Vec<u64>,
}

/// The one-bit contact message of [`SelectiveProbe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Contact;

impl Payload for Contact {
    fn size_bits(&self) -> usize {
        1
    }
}

impl SelectiveProbe {
    /// Fraction of neighbors contacted, fixed at protocol level for the demo.
    const BUDGET: usize = 1;
}

impl SyncProtocol for SelectiveProbe {
    type Msg = Contact;

    fn init(init: &NodeInit<'_>) -> Self {
        let mut targets: Vec<u64> = init.neighbor_ids.map(<[u64]>::to_vec).unwrap_or_default();
        targets.truncate(Self::BUDGET);
        SelectiveProbe { targets }
    }

    fn on_wake(&mut self, ctx: &mut Context<'_, Contact>, cause: WakeCause) {
        if cause == WakeCause::Adversary {
            for &t in &self.targets.clone() {
                ctx.send_to_id(t, Contact);
            }
        }
    }

    fn on_round(&mut self, _: &mut Context<'_, Contact>, _: Vec<(Incoming, Contact)>) {}
}

/// Outcome of the Figure 3 swap demonstration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapDemo {
    /// Whether the crucial neighbor of the focal center was woken in the
    /// original ID assignment.
    pub original_woke_crucial: bool,
    /// Whether it was woken after swapping the crucial node's ID with a
    /// non-contacted neighbor's ID.
    pub swapped_woke_crucial: bool,
}

/// Reproduces the Figure 3 argument: take a 𝒢ₖ instance, find a center
/// whose deterministic 1-round protocol does *not* contact its crucial
/// neighbor, swap the crucial node's ID with the contacted neighbor's ID,
/// and observe that the protocol's fate flips — a deterministic, time-
/// restricted, message-light protocol cannot be correct on both instances.
pub fn swap_demo(k: usize, q: usize, seed: u64) -> SwapDemo {
    let fam = ClassGk::new(k, q, seed).expect("valid family parameters");
    let g = fam.graph().clone();
    let base_ids: Vec<u64> = (0..g.n() as u64).collect();
    let run = |ids: Vec<u64>| {
        let net = Network::with_parts(
            g.clone(),
            PortAssignment::canonical(&g),
            IdAssignment::from_vec(ids),
            KnowledgeMode::Kt1,
        );
        let schedule = WakeSchedule::all_at_zero(&fam.centers());
        SyncEngine::<SelectiveProbe>::new(&net, SyncConfig::default()).run(&schedule)
    };
    // Find a center whose smallest-ID neighbor is NOT its crucial neighbor.
    let (focal_v, focal_w) = fam
        .crucial_pairs()
        .into_iter()
        .find(|&(v, w)| {
            let min_nbr = g
                .neighbors(v)
                .iter()
                .copied()
                .min_by_key(|x| base_ids[x.index()]);
            min_nbr != Some(w)
        })
        .expect("some center has a non-crucial smallest neighbor");
    let contacted = *g
        .neighbors(focal_v)
        .iter()
        .min_by_key(|x| base_ids[x.index()])
        .unwrap();
    let original = run(base_ids.clone());
    let original_woke_crucial = original.metrics.wake_tick[focal_w.index()].is_some();
    // Swap the IDs of the contacted neighbor and the crucial neighbor.
    let mut swapped_ids = base_ids;
    swapped_ids.swap(contacted.index(), focal_w.index());
    let swapped = run(swapped_ids);
    let swapped_woke_crucial = swapped.metrics.wake_tick[focal_w.index()].is_some();
    SwapDemo {
        original_woke_crucial,
        swapped_woke_crucial,
    }
}

/// Sweeps `q` for a fixed `k`.
pub fn sweep(k: usize, qs: &[usize], seed: u64) -> Vec<Thm2Point> {
    qs.iter()
        .map(|&q| run_point(k, q, seed + q as u64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flooding_messages_track_edge_count() {
        let p = run_point(3, 3, 1); // n = 27
                                    // Flooding sends 2m messages; m = Θ(n^{1+1/k}).
        let ratio = p.flood_messages as f64 / p.predicted_shape;
        assert!((0.5..8.0).contains(&ratio), "ratio {ratio}");
        assert!(p.flood_rounds <= 1, "all centers form a dominating set");
    }

    #[test]
    fn dfs_beats_flooding_on_messages_but_not_time() {
        let p = run_point(3, 4, 2); // n = 64
        assert!(
            p.dfs_messages < p.flood_messages,
            "DFS {} should undercut flooding {}",
            p.dfs_messages,
            p.flood_messages
        );
        assert!(
            p.dfs_time_units > p.flood_rounds as f64,
            "the saving must cost time: {} vs {}",
            p.dfs_time_units,
            p.flood_rounds
        );
    }

    #[test]
    fn swap_demo_flips_the_outcome() {
        let demo = swap_demo(3, 3, 5);
        // The deterministic 1-contact protocol misses the crucial neighbor
        // originally; after swapping IDs the contacted port now leads to it.
        assert!(!demo.original_woke_crucial);
        assert!(demo.swapped_woke_crucial);
    }

    #[test]
    fn sweep_is_monotone_in_n() {
        let points = sweep(3, &[2, 3], 3);
        assert!(points[0].n < points[1].n);
        assert!(points[0].flood_messages < points[1].flood_messages);
    }
}
