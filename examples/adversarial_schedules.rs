//! How adversarial can the adversary get? Stress DFS-rank (Theorem 3) with
//! wake-up schedules designed to prolong the execution, and watch the
//! O(n log n) guarantee hold anyway.
//!
//! The Theorem 3 analysis shows the adversary must wake geometrically
//! growing sets of nodes to keep displacing the maximum-rank token; this
//! example plays that adversary: it wakes one fresh node every ~2n time
//! units, right when the current token could be finishing.
//!
//! ```text
//! cargo run --example adversarial_schedules
//! ```

use wakeup::core::dfs_rank::DfsRank;
use wakeup::core::harness;
use wakeup::graph::{generators, NodeId};
use wakeup::sim::adversary::{AdversarialDelay, WakeSchedule};
use wakeup::sim::Network;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 150usize;
    let g = generators::erdos_renyi_connected(n, 0.04, 9)?;
    let net = Network::kt1(g, 9);
    let envelope = |c: f64| c * n as f64 * (n as f64).ln();

    println!(
        "DFS-rank on n = {n}; O(n ln n) envelope ≈ {:.0} messages\n",
        envelope(4.0)
    );
    println!("{:<28} {:>9} {:>12}", "schedule", "messages", "time units");

    let all: Vec<NodeId> = (0..n).map(NodeId::new).collect();
    let schedules: Vec<(&str, WakeSchedule)> = vec![
        ("single node", WakeSchedule::single(NodeId::new(0))),
        ("all at time 0", WakeSchedule::all_at_zero(&all)),
        (
            "staggered, gap 2n",
            WakeSchedule::staggered(&all, 2.0 * n as f64),
        ),
        (
            "staggered, gap n/4 (bursty)",
            WakeSchedule::staggered(&all, n as f64 / 4.0),
        ),
    ];

    for (name, schedule) in &schedules {
        let run = harness::run_async::<DfsRank>(&net, schedule, 21);
        assert!(run.report.all_awake, "{name}: not everyone woke");
        println!(
            "{:<28} {:>9} {:>12.1}",
            name,
            run.report.messages(),
            run.report.time_units()
        );
        assert!(
            (run.report.messages() as f64) < envelope(6.0),
            "{name}: messages above the w.h.p. envelope"
        );
    }

    // Same adversary, now also controlling per-channel delays.
    let mut delays = AdversarialDelay::new(1234);
    let run = harness::run_async_with_delays::<DfsRank>(&net, &schedules[2].1, 22, &mut delays);
    assert!(run.report.all_awake);
    println!(
        "{:<28} {:>9} {:>12.1}",
        "staggered + skewed delays",
        run.report.messages(),
        run.report.time_units()
    );

    println!("\nevery schedule stayed within the O(n log n) envelope ✓");
    Ok(())
}
