//! Leader election under adversarial wake-up, with an execution trace.
//!
//! The paper's related work (Section 1.3) frames leader election as the
//! classic consumer of wake-up primitives; this example runs the
//! `LeaderElect` extension (Theorem 3's DFS tokens + completion
//! announcements) under a hostile staggered schedule and prints the wake
//! front from the recorded trace.
//!
//! ```text
//! cargo run --example leader_election
//! ```

use wakeup::core::leader::LeaderElect;
use wakeup::graph::{generators, NodeId};
use wakeup::sim::adversary::WakeSchedule;
use wakeup::sim::{AsyncConfig, AsyncEngine, Network};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 48usize;
    let g = generators::watts_strogatz(n, 3, 0.2, 11)?;
    let net = Network::kt1(g, 11);

    // The adversary wakes five nodes, spaced to maximize token churn.
    let contenders: Vec<NodeId> = (0..n).step_by(n / 5).map(NodeId::new).collect();
    let schedule = WakeSchedule::staggered(&contenders, 6.0);
    println!(
        "small-world network (n = {n}); adversary wakes {:?} at 6-unit intervals\n",
        contenders.iter().map(|v| v.index()).collect::<Vec<_>>()
    );

    let config = AsyncConfig {
        seed: 5,
        trace_capacity: Some(200_000),
        ..AsyncConfig::default()
    };
    let report = AsyncEngine::<LeaderElect>::new(&net, config).run(&schedule);
    assert!(report.all_awake);

    // Agreement: every node output the same leader.
    let leader = report.outputs[0].expect("node 0 elected a leader");
    for out in &report.outputs {
        assert_eq!(out.unwrap(), leader, "disagreement!");
    }
    let leader_node = net.node_with_id(leader).unwrap();
    println!(
        "elected leader: id {leader} (node {}; adversary-woken: {})",
        leader_node.index(),
        contenders.contains(&leader_node)
    );
    println!(
        "cost: {} messages, {:.1} time units\n",
        report.metrics.messages_sent,
        report.metrics.time_units()
    );

    // Render the first stretch of the wake front from the trace.
    let trace = report.trace.as_ref().unwrap();
    println!("wake front (first 12 wake-ups):");
    for (t, node, cause) in trace.wake_front().into_iter().take(12) {
        println!("  t = {t:7.3}  {node}  ({cause:?})");
    }
    println!("\ntimeline head:");
    print!("{}", trace.render_timeline(8));
    Ok(())
}
