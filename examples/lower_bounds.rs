//! Walk both lower bounds interactively: the Theorem 1 advice/message curve
//! on class 𝒢 and the Theorem 2 time/message trade-off on class 𝒢ₖ,
//! including the Figure 3 ID-swap that powers the Theorem 2 proof.
//!
//! ```text
//! cargo run --release --example lower_bounds
//! ```

use wakeup::lb::{thm1, thm2};
use wakeup::sim::viz::sparkline;

fn main() {
    // ---- Theorem 1 ----
    println!("Theorem 1 — every advice bit halves the message bill (class 𝒢, n = 48)\n");
    println!(
        "{:>3} {:>9} {:>11} {:>7}   curve",
        "β", "messages", "n²/2^β", "ratio"
    );
    let points = thm1::sweep_beta(48, &[0, 1, 2, 3, 4, 5, 6], 11);
    let series: Vec<f64> = points.iter().map(|p| (p.messages as f64).ln()).collect();
    let spark = sparkline(&series);
    for (i, p) in points.iter().enumerate() {
        assert!(p.all_found, "every center must find its crucial neighbor");
        println!(
            "{:>3} {:>9} {:>11.0} {:>7.3}   {}",
            p.beta,
            p.messages,
            p.predicted_shape,
            p.messages as f64 / p.predicted_shape,
            &spark.chars().map(String::from).collect::<Vec<_>>()[..=i].join("")
        );
    }
    println!("\nflat ratios = the measured strategy sits on the theorem's n²/2^β curve;");
    println!("Theorem 1 says no scheme can do polynomially better.\n");

    // ---- Lemma 2 flavor: port frugality ----
    let profile = thm1::port_usage(48, 3, 9);
    println!(
        "Lemma 2 check (β = 3): {:.0}% of centers used ≤ n/2^β = {:.0} ports",
        100.0 * profile.small_fraction,
        profile.small_threshold
    );

    // ---- Theorem 2 ----
    println!("\nTheorem 2 — time-restricted algorithms pay n^(1+1/k) on class 𝒢ₖ\n");
    println!(
        "{:>2} {:>5} {:>3} {:>11} {:>13} {:>10} {:>9}",
        "k", "n", "d", "flood msgs", "flood/(shape)", "DFS msgs", "DFS time"
    );
    for &(k, q) in &[(3usize, 3usize), (3, 4), (3, 5), (5, 2)] {
        let p = thm2::run_point(k, q, 13);
        println!(
            "{:>2} {:>5} {:>3} {:>11} {:>13.3} {:>10} {:>9.0}",
            p.k,
            p.n,
            p.d,
            p.flood_messages,
            p.flood_messages as f64 / p.predicted_shape,
            p.dfs_messages,
            p.dfs_time_units
        );
    }
    println!("\nflooding finishes in 1 round but pays ~2m = Θ(n^(1+1/k)) messages;");
    println!("DFS-rank escapes on messages only by paying Θ(n) time — Theorem 2 says");
    println!("that trade is unavoidable.\n");

    // ---- Figure 3 ----
    let demo = thm2::swap_demo(3, 3, 5);
    println!("Figure 3 ID-swap demo (deterministic 1-contact protocol):");
    println!(
        "  original IDs : crucial neighbor woken = {}",
        demo.original_woke_crucial
    );
    println!(
        "  swapped IDs  : crucial neighbor woken = {}",
        demo.swapped_woke_crucial
    );
    assert_ne!(demo.original_woke_crucial, demo.swapped_woke_crucial);
    println!("  the outcome flips — a time-restricted deterministic protocol cannot");
    println!("  be right on both instances, which is Lemma 5/6 in action.");
}
