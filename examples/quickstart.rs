//! Quickstart: wake a sleeping network three ways and compare the paper's
//! complexity measures.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use wakeup::core::advice::{run_scheme, CenScheme};
use wakeup::core::dfs_rank::DfsRank;
use wakeup::core::flooding::FloodAsync;
use wakeup::core::harness;
use wakeup::graph::{algo, generators, NodeId};
use wakeup::sim::{adversary::WakeSchedule, Network};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 200-node sparse random network; the adversary wakes one node.
    let n = 200;
    let g = generators::erdos_renyi_connected(n, 0.03, 42)?;
    let diameter = algo::diameter(&g).expect("connected");
    let schedule = WakeSchedule::single(NodeId::new(0));
    println!("network: n = {n}, m = {}, diameter = {diameter}", g.m());
    println!("adversary wakes node 0; everyone else sleeps\n");

    // 1. Flooding: optimal time, Θ(m) messages.
    let net = Network::kt0(g.clone(), 42);
    let flood = harness::run_async::<FloodAsync>(&net, &schedule, 1);
    println!(
        "flooding        : {:>6} messages, {:>6.1} time units (ρ_awk = {})",
        flood.report.messages(),
        flood.report.time_units(),
        flood.rho_awk.unwrap()
    );

    // 2. DFS-rank (Theorem 3): O(n log n) messages under KT1.
    let net = Network::kt1(g.clone(), 42);
    let dfs = harness::run_async::<DfsRank>(&net, &schedule, 2);
    println!(
        "DFS-rank (Thm 3): {:>6} messages, {:>6.1} time units",
        dfs.report.messages(),
        dfs.report.time_units()
    );

    // 3. Child-encoding advice (Theorem 5B): O(n) messages with O(log n)-bit
    //    advice per node, back in KT0 CONGEST.
    let net = Network::kt0(g, 42);
    let cen = run_scheme(&CenScheme::new(), &net, &schedule, 3);
    println!(
        "CEN advice (5B) : {:>6} messages, {:>6.1} time units, advice max {} bits / avg {:.1} bits",
        cen.report.messages(),
        cen.report.time_units(),
        cen.advice.max_bits,
        cen.advice.avg_bits
    );

    for (name, ok) in [
        ("flooding", flood.report.all_awake),
        ("dfs-rank", dfs.report.all_awake),
        ("cen", cen.report.all_awake),
    ] {
        assert!(ok, "{name} failed to wake everyone");
    }
    println!("\nall three algorithms woke every node ✓");
    Ok(())
}
