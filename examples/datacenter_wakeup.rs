//! Wake-on-LAN at data-center scale — the paper's motivating scenario.
//!
//! A fat-tree-ish topology (racks of servers under aggregation switches)
//! sleeps to save power; a burst of traffic wakes a handful of ingress
//! nodes, which must wake the whole fleet. We compare the naive broadcast
//! (every NIC spams "magic packets" on every link) against the paper's
//! message-efficient algorithms.
//!
//! ```text
//! cargo run --example datacenter_wakeup
//! ```

use wakeup::core::advice::{run_scheme, SpannerScheme};
use wakeup::core::fast_wakeup::FastWakeUp;
use wakeup::core::flooding::FloodSync;
use wakeup::core::harness;
use wakeup::graph::{algo, Graph, GraphBuilder, NodeId};
use wakeup::sim::{adversary::WakeSchedule, Network, TICKS_PER_UNIT};

/// Builds a two-level "data center": `spines` core switches (a clique),
/// each connected to every aggregation switch; `racks` aggregation switches
/// each serving `servers` leaf nodes.
fn datacenter(spines: usize, racks: usize, servers: usize) -> Graph {
    let n = spines + racks + racks * servers;
    let mut b = GraphBuilder::new(n);
    for s1 in 0..spines {
        for s2 in (s1 + 1)..spines {
            b.add_edge(s1, s2).unwrap();
        }
    }
    for r in 0..racks {
        let agg = spines + r;
        for s in 0..spines {
            b.add_edge(s, agg).unwrap();
        }
        for j in 0..servers {
            b.add_edge(agg, spines + racks + r * servers + j).unwrap();
        }
    }
    b.build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = datacenter(4, 20, 24);
    let n = g.n();
    println!(
        "data center: {} nodes, {} links, diameter {}",
        n,
        g.m(),
        algo::diameter(&g).unwrap()
    );

    // Ingress traffic wakes the four spine switches.
    let ingress: Vec<NodeId> = (0..4).map(NodeId::new).collect();
    let schedule = WakeSchedule::all_at_zero(&ingress);
    let rho = algo::awake_distance(&g, &ingress).unwrap();
    println!(
        "ingress wakes the {} spines; ρ_awk = {rho}\n",
        ingress.len()
    );

    // Naive broadcast flooding.
    let net = Network::kt1(g.clone(), 7);
    let flood = harness::run_sync::<FloodSync>(&net, &schedule, 1);
    println!(
        "flooding         : {:>7} magic packets, {:>3} rounds",
        flood.report.messages(),
        flood.report.metrics.all_awake_tick.unwrap() / TICKS_PER_UNIT
    );

    // FastWakeUp (Theorem 4): ρ_awk-proportional time, subquadratic packets.
    let fast = harness::run_sync::<FastWakeUp>(&net, &schedule, 2);
    println!(
        "FastWakeUp (Thm4): {:>7} magic packets, {:>3} rounds (bound: {} = 10·ρ_awk)",
        fast.report.messages(),
        fast.report.metrics.all_awake_tick.unwrap() / TICKS_PER_UNIT,
        10 * rho
    );

    // Spanner advice (Theorem 6): the management plane (oracle) preinstalls
    // tiny routing hints in each NIC's EEPROM.
    let net0 = Network::kt0(g, 7);
    let spanner = run_scheme(&SpannerScheme::new(2), &net0, &schedule, 3);
    println!(
        "spanner advice(6): {:>7} magic packets, {:>5.1} time units, {} bits max per NIC",
        spanner.report.messages(),
        spanner.report.time_units(),
        spanner.advice.max_bits
    );

    assert!(flood.report.all_awake && fast.report.all_awake && spanner.report.all_awake);
    println!("\nfleet fully awake under all three strategies ✓");

    // Telemetry view: when did the racks actually come up, and what was the
    // unavoidable serial part? The wake-latency histogram buckets each NIC's
    // sleep time (ticks past the first ingress wake); the critical path is
    // the longest chain of wake-triggering packets — the floor on wall-clock
    // wake-up no matter how wide the fabric is.
    for (name, report) in [
        ("flooding", &flood.report),
        ("FastWakeUp", &fast.report),
        ("spanner advice", &spanner.report),
    ] {
        println!(
            "\n{name}: {}\n  wake latency (ticks past first wake):",
            report.obs_snapshot().summary_line()
        );
        print!("{}", report.obs.wake_latency(&report.metrics).render(30));
    }
    Ok(())
}
