//! Bring your own network: load an edge-list file, inspect it, and wake it.
//!
//! Demonstrates the `wakeup_graph::io` format used by `wakeup-cli`'s
//! `file:PATH` graph spec.
//!
//! ```text
//! cargo run --example custom_topology
//! ```

use std::io::Write;

use wakeup::core::advice::{run_scheme, CenScheme};
use wakeup::graph::{algo, io, NodeId};
use wakeup::sim::{adversary::WakeSchedule, Network};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A hand-written campus network: two buildings (triangles) joined by a
    // long corridor, plus a server room hanging off one end.
    let text = "\
# campus network
n 12
0 1
1 2
2 0
2 3
3 4
4 5
5 6
6 7
7 8
8 9
9 7
7 10
10 11
";
    let path = std::env::temp_dir().join("wakeup_campus.edges");
    std::fs::File::create(&path)?.write_all(text.as_bytes())?;
    println!("wrote {}", path.display());

    let g = io::read_edge_list(std::io::BufReader::new(std::fs::File::open(&path)?))?;
    println!(
        "loaded: n = {}, m = {}, diameter = {:?}, girth = {:?}",
        g.n(),
        g.m(),
        algo::diameter(&g),
        algo::girth(&g)
    );

    // Round-trip check: serialize and re-parse.
    let round = io::parse_edge_list(&io::to_edge_list(&g))?;
    assert_eq!(g, round);

    // Wake it with CEN advice from the far building.
    let net = Network::kt0(g, 99);
    let run = run_scheme(
        &CenScheme::new(),
        &net,
        &WakeSchedule::single(NodeId::new(11)),
        1,
    );
    assert!(run.report.all_awake);
    println!(
        "CEN wake-up from node 11: {} messages, {:.1} time units, advice max {} bits",
        run.report.messages(),
        run.report.time_units(),
        run.advice.max_bits
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
