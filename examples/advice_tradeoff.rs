//! The information-sensitivity of wake-up: how messages trade against advice
//! bits (Theorem 1's lower bound, bracketed by the Section 4 schemes).
//!
//! Prints two tables:
//! 1. the Theorem 1 experiment on class 𝒢 — messages vs β advice bits,
//!    tracking the `n²/2^β` shape;
//! 2. the Section 4 advising schemes on the same network — each point a
//!    different (time, messages, advice) trade.
//!
//! ```text
//! cargo run --example advice_tradeoff
//! ```

use wakeup::core::advice::{run_scheme, BfsTreeScheme, CenScheme, SpannerScheme, ThresholdScheme};
use wakeup::graph::{generators, NodeId};
use wakeup::lb::thm1;
use wakeup::sim::{adversary::WakeSchedule, Network};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Theorem 1: messages vs advice on class G (n = 48) ===");
    println!(
        "{:>4} {:>10} {:>14} {:>8}",
        "β", "messages", "n²/2^β shape", "solved"
    );
    for p in thm1::sweep_beta(48, &[0, 1, 2, 3, 4, 5], 11) {
        println!(
            "{:>4} {:>10} {:>14.0} {:>8}",
            p.beta, p.messages, p.predicted_shape, p.all_found
        );
    }

    println!("\n=== Section 4 schemes on G(n=300, p=0.02) ===");
    let g = generators::erdos_renyi_connected(300, 0.02, 5)?;
    let net = Network::kt0(g, 5);
    let schedule = WakeSchedule::single(NodeId::new(0));
    println!(
        "{:<18} {:>9} {:>10} {:>10} {:>10}",
        "scheme", "messages", "time", "max bits", "avg bits"
    );
    let rows: Vec<(&str, wakeup::core::advice::SchemeRun)> = vec![
        (
            "Cor 1 (BFS tree)",
            run_scheme(&BfsTreeScheme::new(), &net, &schedule, 1),
        ),
        (
            "Thm 5A (thresh)",
            run_scheme(&ThresholdScheme::new(), &net, &schedule, 2),
        ),
        (
            "Thm 5B (CEN)",
            run_scheme(&CenScheme::new(), &net, &schedule, 3),
        ),
        (
            "Thm 6 (k=2)",
            run_scheme(&SpannerScheme::new(2), &net, &schedule, 4),
        ),
        (
            "Cor 2 (k=⌈lg n⌉)",
            run_scheme(&SpannerScheme::log_instantiation(300), &net, &schedule, 5),
        ),
    ];
    for (name, run) in rows {
        assert!(run.report.all_awake, "{name} failed");
        println!(
            "{:<18} {:>9} {:>10.1} {:>10} {:>10.2}",
            name,
            run.report.messages(),
            run.report.time_units(),
            run.advice.max_bits,
            run.advice.avg_bits
        );
    }
    println!("\nall schemes woke the full network ✓");
    Ok(())
}
