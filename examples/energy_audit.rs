//! Energy audit: which wake-up strategy lets the most NICs stay quiet?
//!
//! The paper's motivation is energy (Wake-on-LAN, performance-per-watt).
//! Message complexity is the total energy; this example also looks at how
//! that energy is *distributed* — a protocol that concentrates traffic on a
//! few nodes drains those nodes even if its total is low.
//!
//! ```text
//! cargo run --example energy_audit
//! ```

use wakeup::core::advice::{run_scheme, CenScheme};
use wakeup::core::dfs_rank::DfsRank;
use wakeup::core::energy::EnergyReport;
use wakeup::core::flooding::FloodAsync;
use wakeup::core::harness;
use wakeup::graph::{generators, NodeId};
use wakeup::sim::adversary::WakeSchedule;
use wakeup::sim::Network;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 200usize;
    let g = generators::preferential_attachment(n, 3, 13)?;
    println!(
        "scale-free network (Barabási–Albert): n = {n}, m = {}, max degree {}\n",
        g.m(),
        g.max_degree()
    );
    let schedule = WakeSchedule::single(NodeId::new(0));

    println!(
        "{:<16} {:>12} {:>10} {:>10} {:>8}",
        "strategy", "total energy", "max load", "imbalance", "gini"
    );
    let rows: Vec<(&str, EnergyReport, bool, wakeup::sim::RunReport)> = vec![
        {
            let net = Network::kt0(g.clone(), 13);
            let run = harness::run_async::<FloodAsync>(&net, &schedule, 1);
            (
                "flooding",
                EnergyReport::from_metrics(&run.report.metrics),
                run.report.all_awake,
                run.report,
            )
        },
        {
            let net = Network::kt1(g.clone(), 13);
            let run = harness::run_async::<DfsRank>(&net, &schedule, 2);
            (
                "dfs-rank",
                EnergyReport::from_metrics(&run.report.metrics),
                run.report.all_awake,
                run.report,
            )
        },
        {
            let net = Network::kt0(g.clone(), 13);
            let run = run_scheme(&CenScheme::new(), &net, &schedule, 3);
            (
                "cen advice",
                EnergyReport::from_metrics(&run.report.metrics),
                run.report.all_awake,
                run.report,
            )
        },
    ];
    for (name, e, ok, _) in &rows {
        assert!(ok, "{name} failed to wake everyone");
        println!(
            "{:<16} {:>12} {:>10} {:>9.1}x {:>8.3}",
            name,
            e.total,
            e.max,
            e.imbalance(),
            e.gini
        );
    }
    println!(
        "\nflooding pays degree-proportional energy (hubs drain fastest on scale-free\n\
         graphs); DFS and CEN cut totals by {:.1}x and {:.1}x, trading some per-node balance.",
        rows[0].1.total as f64 / rows[1].1.total.max(1) as f64,
        rows[0].1.total as f64 / rows[2].1.total.max(1) as f64
    );

    // The always-on telemetry shows *when* that energy is spent: the
    // wake-latency histogram is how long each NIC stayed asleep (ticks past
    // the first wake, log2 buckets), and the causal critical path is the
    // longest chain of wake-triggering deliveries — the part of the run no
    // extra parallelism can shorten.
    for (name, _, _, report) in &rows {
        println!(
            "\n{name}: {}\n  wake latency (ticks past first wake):",
            report.obs_snapshot().summary_line()
        );
        print!("{}", report.obs.wake_latency(&report.metrics).render(30));
    }
    Ok(())
}
